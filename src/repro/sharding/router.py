"""Federated scatter/gather execution of bounded plans over shards.

:class:`ShardRouter` answers covered queries against data partitioned across
N heterogeneous shards (:mod:`repro.sharding.shards`) while keeping the
paper's guarantee intact: a covered query's cost is capped by
``access_bound()`` *regardless of how the data is distributed*, because only
**fetch steps** are scattered.  The soundness argument, and the reason whole
plans are *not* pushed to shards:

* For a fetch ``fetch(X ∈ keys, R, Y)``, the constraint-index content of the
  whole database is exactly the union of the per-fragment index contents
  (projection commutes with union), so fetching from every owning shard and
  unioning the partials *is* the single-database fetch.
* A join, by contrast, can pair a tuple on shard 0 with a tuple on shard 2;
  running the join per-shard and unioning would silently lose every
  cross-shard pair.  So joins, selections, projections, unions and
  differences all run **centrally** at the router, over the merged (and
  still bounded, ≤ ``access_bound()``) fetch results.

This is the decomposition of cubicweb's multi-source planner — steps
assigned to sources, results recombined — specialised to bounded plans,
where the split is trivial to place: fetches go out, algebra stays home.

When the fetch key includes the relation's partition attribute, the router
prunes the scatter to each key's single owning shard; otherwise it
broadcasts the key set to all shards.  Merges are epoch-guarded: every
shard's :class:`~repro.storage.counters.VersionClock` is snapshotted before
execution and re-validated after, so a merge never combines partials from
different epochs of the same shard — a racing write forces a bounded retry
and, if the race persists, a typed
:class:`~repro.core.errors.TransientFault` (never a silently torn result).

The router duck-types :class:`~repro.core.engine.BoundedEngine`'s serving
surface (``prepare`` / ``execute`` / ``apply_updates`` / ``cache_stats`` /
``clock`` / ``fallback_breaker``), so :class:`~repro.serving.server.
BoundedServer` can sit on top of a federation without changes beyond the
``engine.clock`` seam.
"""

from __future__ import annotations

import time
from typing import Callable, Hashable, Iterable, Sequence

from ..core.access import AccessSchema
from ..core.deltas import FALLBACK, PATCHED, DeltaDeriver, WriteDelta
from ..core.engine import EngineResult, PreparedQuery, prepare_query
from ..core.errors import (
    CircuitOpenError,
    MaintenanceError,
    NotCoveredError,
    StorageError,
    TransientFault,
)
from ..core.fingerprint import prepared_cache_key
from dataclasses import replace

from ..core.plan import (
    BoundedPlan,
    FetchOp,
    HashJoinOp,
    PlanStep,
    ProductOp,
    ProjectOp,
    RenameOp,
    SelectOp,
)
from ..core.planstore import PlanStore, ResultCache
from ..core.query import Query
from ..evaluator.baseline import evaluate_conventional
from ..evaluator.executor import (
    PlanExecutor,
    _column_positions,
    _compile_predicates,
    _position_of,
)
from ..serving.metrics import LatencyRecorder
from ..storage.counters import AccessCounter, VersionClock
from ..storage.database import Database
from ..storage.index import IndexSet
from .partition import HashPartitioner, Partitioner, PartitionOverlay
from .rebalance import RebalanceReport, rebalance_key_range
from .replica import ReplicaSet
from .shards import EngineShard, Shard, SQLiteShard

Row = tuple


class RouterMetrics:
    """Scatter/gather observability: per-shard latency, merges, retries."""

    def __init__(self):
        #: federated fetch steps executed (one per FetchOp kernel run)
        self.scatters = 0
        #: per-shard fetch calls issued (≤ scatters × shard count)
        self.shard_fetches = 0
        #: scatters routed to owning shards only (partition-key pruning)
        self.routed = 0
        #: scatters sent to every shard (key does not include partition attr)
        self.broadcasts = 0
        #: scatters that carried a pushed-down select predicate, and the rows
        #: the shards dropped before the merge because of it
        self.select_pushdowns = 0
        self.pushdown_rows_filtered = 0
        #: merged-union sizes, aggregated
        self.merges = 0
        self.merge_rows = 0
        self.merge_rows_max = 0
        #: executions re-run because a shard epoch moved mid-merge
        self.snapshot_retries = 0
        #: executions abandoned after exhausting snapshot retries
        self.mixed_epoch_aborts = 0
        #: write batches routed through the shards
        self.write_batches = 0
        #: shard-local fetch-partial cache traffic, summed over the shards
        #: that keep one (diffed around every scatter fetch call)
        self.shard_cache_hits = 0
        self.shard_cache_misses = 0
        #: online key-range migrations: completed runs, rows they moved,
        #: and runs abandoned because the source epoch kept moving
        self.rebalances = 0
        self.rebalance_rows_moved = 0
        self.rebalance_aborts = 0
        self.latency = LatencyRecorder()

    def observe_merge(self, size: int) -> None:
        self.merges += 1
        self.merge_rows += size
        self.merge_rows_max = max(self.merge_rows_max, size)

    def snapshot(self) -> dict:
        """Everything, JSON-ready — joins the soak report and bench trajectory."""
        return {
            "scatters": self.scatters,
            "shard_fetches": self.shard_fetches,
            "routed": self.routed,
            "broadcasts": self.broadcasts,
            "select_pushdowns": self.select_pushdowns,
            "pushdown_rows_filtered": self.pushdown_rows_filtered,
            "merges": self.merges,
            "merge_rows": self.merge_rows,
            "merge_rows_max": self.merge_rows_max,
            "merge_rows_mean": (self.merge_rows / self.merges) if self.merges else 0.0,
            "snapshot_retries": self.snapshot_retries,
            "mixed_epoch_aborts": self.mixed_epoch_aborts,
            "write_batches": self.write_batches,
            "shard_cache_hits": self.shard_cache_hits,
            "shard_cache_misses": self.shard_cache_misses,
            "rebalances": self.rebalances,
            "rebalance_rows_moved": self.rebalance_rows_moved,
            "rebalance_aborts": self.rebalance_aborts,
            "shard_latency": self.latency.snapshot(),
        }


def _trace_to_fetch(
    plan: BoundedPlan, consumers: dict[int, int], step_id: int, column: str
) -> tuple[int, str] | None:
    """Follow ``column`` backwards from ``step_id`` to the fetch producing it.

    Returns ``(fetch step id, column name at the fetch)`` when the whole path
    consists of single-consumer, row-wise monotone steps (project, rename,
    select, product, hash join) — the steps where dropping an input row only
    ever drops the output rows derived from it and preserves the traced
    column's value.  Any other operator (set operations especially: dropping
    a row from a difference's subtrahend would *add* result rows), a step
    with additional consumers, or a dead end returns ``None``.
    """
    while True:
        if consumers.get(step_id, 0) != 1:
            return None
        op = plan.steps[step_id].op
        if isinstance(op, FetchOp):
            return (step_id, column) if column in plan.steps[step_id].columns else None
        if isinstance(op, ProjectOp):
            names = op.output_names if op.output_names is not None else op.columns
            if column not in names:
                return None
            column = op.columns[names.index(column)]
            step_id = op.inputs[0]
        elif isinstance(op, RenameOp):
            reverse = {new: old for old, new in op.mapping.items()}
            column = reverse.get(column, column)
            step_id = op.inputs[0]
        elif isinstance(op, SelectOp):
            step_id = op.inputs[0]
        elif isinstance(op, (ProductOp, HashJoinOp)):
            left, right = op.inputs
            if column in plan.steps[left].columns:
                step_id = left
            elif column in plan.steps[right].columns:
                step_id = right
            else:
                return None
        else:
            return None


def _pushdown_sites(
    plan: BoundedPlan,
) -> tuple[dict[int, int], dict[int, list]]:
    """Shard-pushable selection work: ``(fused selects, per-fetch filters)``.

    Soundness rests on selection distributing over union: a federated fetch
    is the union of per-shard fetches, so ``σ(∪ₛ fetchₛ) = ∪ₛ σ(fetchₛ)`` —
    filtering on each shard before the merge equals filtering centrally
    after it, with fewer rows crossing the shard boundary.  Two shapes:

    * ``fused``: a select sitting *directly* on a single-consumer fetch.
      The whole conjunction moves into the scatter and the select step
      becomes a passthrough.
    * ``filters``: a constant predicate of any select or hash-join residual
      whose column traces back (:func:`_trace_to_fetch`) through a
      single-consumer monotone chain to a fetch.  The shards pre-filter the
      partials (every dropped row could only have produced rows the central
      predicate would drop anyway) while the central check stays in place
      for the surviving rows.
    """
    consumers: dict[int, int] = {}
    for step in plan.steps:
        for source in step.op.inputs:
            consumers[source] = consumers.get(source, 0) + 1
    consumers[plan.output] = consumers.get(plan.output, 0) + 1

    fused: dict[int, int] = {}
    filters: dict[int, list] = {}
    for step in plan.steps:
        op = step.op
        if isinstance(op, SelectOp):
            source = op.inputs[0]
            if (
                isinstance(plan.steps[source].op, FetchOp)
                and consumers.get(source, 0) == 1
            ):
                fused[step.id] = source
                filters.setdefault(source, []).extend(op.predicates)
                continue
            candidates = op.predicates
            start = source
        elif isinstance(op, HashJoinOp):
            candidates = op.residual
            start = None  # resolved per predicate: either join input
        else:
            continue
        for predicate in candidates:
            if predicate.right_is_column:
                continue
            if start is None:
                left, right = op.inputs
                if predicate.left in plan.steps[left].columns:
                    origin = left
                elif predicate.left in plan.steps[right].columns:
                    origin = right
                else:
                    continue
            else:
                origin = start
            site = _trace_to_fetch(plan, consumers, origin, predicate.left)
            if site is None:
                continue
            fetch_id, fetch_column = site
            filters.setdefault(fetch_id, []).append(
                replace(predicate, left=fetch_column)
            )
    return fused, filters


class FederatedExecutor(PlanExecutor):
    """A :class:`PlanExecutor` whose fetch kernels scatter across shards.

    Every non-fetch kernel is inherited unchanged — the compiled plan's
    joins, selections and set operations run centrally over the merged
    partials, exactly as they would over a single database.  Only
    ``_compile_fetch`` is replaced: instead of closing over one
    :class:`~repro.storage.index.ConstraintIndex`, the kernel computes the
    step's distinct keys and hands them to the router's scatter/gather.

    One extra federation-only rewrite applies: selection work is **pushed
    into the scatter** (:func:`_pushdown_sites`) — a select sitting directly
    on a single-consumer fetch moves wholesale (the select step becomes a
    passthrough), and constant predicates of downstream selects or join
    residuals whose columns trace back to a fetch pre-filter its partials on
    the shards.  Access accounting is unchanged — shards count every tuple
    the index lookup touches, filtered or not.
    """

    def __init__(self, router: "ShardRouter"):
        # No local database or indexes: fetches never touch them, and no
        # other kernel reads ``self.database``.
        super().__init__(None, IndexSet())  # type: ignore[arg-type]
        self.router = router
        #: select step id -> fetch step id, for the plan currently compiling
        self._fused: dict[int, int] = {}
        #: fetch step id -> predicates the shards apply before shipping
        self._fetch_filters: dict[int, list] = {}

    def _compile(self, plan: BoundedPlan):
        self._fused, self._fetch_filters = _pushdown_sites(plan)
        try:
            return super()._compile(plan)
        finally:
            self._fused = {}
            self._fetch_filters = {}

    def _compile_step(
        self, plan: BoundedPlan, step: PlanStep, columns: list[tuple[str, ...]]
    ) -> tuple[Callable, tuple[str, ...]]:
        fused_source = self._fused.get(step.id)
        if fused_source is not None:
            # The selection already ran shard-side, inside its fetch.
            kernel = lambda env, counter, _src=fused_source: env[_src]  # noqa: E731
            return kernel, columns[fused_source]
        return super()._compile_step(plan, step, columns)

    def _compile_fetch(
        self, plan: BoundedPlan, step: PlanStep, source_columns: tuple[str, ...]
    ) -> tuple[Callable, tuple[str, ...]]:
        op: FetchOp = step.op  # type: ignore[assignment]
        constraint = op.constraint
        base = plan.occurrences.get(constraint.relation, constraint.relation)
        positions = _column_positions(source_columns)
        key_positions = tuple(_position_of(positions, c, step) for c in op.key_columns)
        source = op.inputs[0]
        # Fetch keys are aligned with sorted(lhs); when the partition
        # attribute is part of the key, each key names its owning shard and
        # the scatter is pruned to it.  (Constraint attributes are base
        # attribute names even for renamed occurrences — only relation names
        # are actualized.)
        lhs = sorted(constraint.lhs)
        partition_attribute = self.router.partitioner.attribute(base)
        routed_position = (
            lhs.index(partition_attribute) if partition_attribute in lhs else None
        )
        pushed = self._fetch_filters.get(step.id)
        matcher = (
            _compile_predicates(tuple(pushed), step.columns) if pushed else None
        )
        router = self.router

        def fetch_kernel(
            env,
            counter,
            _src=source,
            _kp=key_positions,
            _rp=routed_position,
            _pred=matcher,
        ):
            keys: set[Row] = set()
            for row in env[_src]:
                keys.add(tuple(row[p] for p in _kp))
            return router._scatter_fetch(
                constraint, base, keys, _rp, counter, predicate=_pred
            )

        # Index tuples are aligned with sorted(lhs | rhs); so are the step's columns.
        return fetch_kernel, step.columns


class ShardRouter:
    """Routes covered queries and writes over a partitioned shard federation.

    ``shards`` and ``partitioner`` must agree on the shard count; the
    partitioner decides which shard owns each row (and, for pruned fetches,
    each key).  ``plan_store`` may be shared with the engine shards — C2–C4
    output depends only on (query, access schema), so one store serves the
    whole federation.  The result cache is router-level, keyed by the
    concatenated per-shard snapshots of the plan's dependencies, so a cached
    federated result is served only while *no* shard has written a dependent
    relation.

    **Snapshot-validation contract.**  Every cached federated result carries
    the concatenation of per-shard clock snapshots taken *before* the
    execution that filled it; ``execute`` serves the entry only on an exact
    snapshot match.  With ``delta_repair`` (the default), a routed write
    batch repairs dependent entries in place via
    :class:`~repro.core.deltas.DeltaDeriver` instead of sweeping them — but
    only when the entry's stored snapshot equals the pre-batch federated
    snapshot (i.e. *this batch* is the only change since fill) **and** no
    shard epoch moves during the derivation itself.  A direct shard write
    (bypassing the router) breaks the first condition; a racing write breaks
    the second; either way the entry is invalidated, never patched.  Writes
    that fail mid-batch always sweep conservatively.

    ``write_observer``, when set, is called with every routed update batch
    after it fully applies — the seam the sharded soak uses to keep its
    single-database reference in lockstep with the federation.
    """

    def __init__(
        self,
        shards: Sequence[Shard],
        partitioner: Partitioner,
        access_schema: AccessSchema,
        *,
        plan_store: PlanStore | None = None,
        plan_cache_size: int = 128,
        result_cache_size: int = 256,
        max_snapshot_retries: int = 2,
        optimize: bool = True,
        delta_repair: bool = True,
        repair_env_rows: int = 200_000,
        fallback_breaker: object | None = None,
        write_observer: Callable[[list], None] | None = None,
    ):
        if not shards:
            raise StorageError("a shard router needs at least one shard")
        if len(shards) != partitioner.shard_count:
            raise StorageError(
                f"partitioner is configured for {partitioner.shard_count} shards "
                f"but {len(shards)} were given"
            )
        self.shards = list(shards)
        # Every router routes through an overlay so online rebalancing is
        # always available: the overlay is a transparent passthrough until
        # the first override lands.
        if not isinstance(partitioner, PartitionOverlay):
            partitioner = PartitionOverlay(partitioner)
        self.partitioner = partitioner
        self.access_schema = access_schema
        self.plan_cache = plan_store if plan_store is not None else PlanStore(plan_cache_size)
        self.result_cache = ResultCache(result_cache_size, max_env_rows=repair_env_rows)
        self.delta_repair = delta_repair
        #: router-level clock: one bump per routed write batch.  The serving
        #: tier's lock-free read validation runs against this clock (the
        #: ``engine.clock`` seam); per-shard clocks guard the merges.
        self.clock = VersionClock()
        self.optimize = optimize
        self.max_snapshot_retries = max_snapshot_retries
        self.fallback_breaker = fallback_breaker
        self.write_observer = write_observer
        self.metrics = RouterMetrics()
        # Replica sets adopt the router's latency recorder: hedged-read
        # routing inside a set and the per-replica histograms in ``stats()``
        # then read the same samples (one source of truth).
        for shard in self.shards:
            if isinstance(shard, ReplicaSet):
                shard.latency = self.metrics.latency
        self._executor = FederatedExecutor(self)
        # Repair re-runs dirty fetch kernels through the federated executor
        # itself (row-mode by construction), so patched partials are merged
        # exactly as a fresh scatter would merge them.  No group_lookup: the
        # router has no single live index to compare against.
        self._deriver = DeltaDeriver(self._executor, partitioner.schema)
        #: the conventional-evaluation seam, same as the engine's (tests and
        #: the fault injector wrap the attribute, not the module function).
        self._fallback_evaluator = evaluate_conventional

    # -- preparation (C2-C4, shared with BoundedEngine) -----------------------------
    def _cache_key(self, query: Query, minimize: bool, allow_rewrite: bool) -> Hashable:
        return prepared_cache_key(
            query,
            minimize=minimize,
            allow_rewrite=allow_rewrite,
            optimize=self.optimize,
        )

    def prepare(
        self, query: Query, *, minimize: bool = True, allow_rewrite: bool = True
    ) -> tuple[PreparedQuery, bool]:
        """The cached C2-C4 pipeline; returns ``(prepared, was_cache_hit)``."""
        _, entry, hit = self._prepare_keyed(query, minimize, allow_rewrite)
        return entry, hit

    def _prepare_keyed(
        self, query: Query, minimize: bool, allow_rewrite: bool
    ) -> tuple[Hashable, PreparedQuery, bool]:
        key = self._cache_key(query, minimize, allow_rewrite)
        entry = self.plan_cache.get(key)
        if entry is not None:
            return key, entry, True
        entry = prepare_query(
            query,
            self.access_schema,
            minimize=minimize,
            allow_rewrite=allow_rewrite,
            optimize=self.optimize,
        )
        evicted = self.plan_cache.put(key, entry, dependencies=entry.dependencies)
        self._discard_compiled(evicted)
        return key, entry, False

    def _discard_compiled(self, entries: Iterable[object]) -> None:
        for entry in entries:
            executable = getattr(entry, "executable", None)
            if executable is not None:
                self._executor.discard(executable)

    # -- execution (scatter/gather, epoch-guarded) ----------------------------------
    def execute(
        self,
        query: Query,
        *,
        minimize: bool = True,
        allow_rewrite: bool = True,
        fallback: bool = True,
    ) -> EngineResult:
        """Answer ``query`` over the federation; bounded scatter/gather when covered.

        Covered queries execute the optimized plan on the federated executor:
        fetches scatter to the owning shards, everything else runs centrally.
        Each attempt snapshots every shard's clock over the plan's dependent
        relations first and validates the snapshots after the merge — a
        racing write invalidates the attempt (counted as a snapshot retry)
        and the execution re-runs against the new epoch, up to
        ``max_snapshot_retries`` times before raising
        :class:`~repro.core.errors.TransientFault`.  A merge therefore never
        mixes epochs.  Uncovered queries fall back to conventional
        evaluation over a gathered copy of their relations (breaker-gated,
        like the engine's fallback).
        """
        key, prepared, cached = self._prepare_keyed(query, minimize, allow_rewrite)

        if prepared.covered:
            dependencies = prepared.dependencies
            for _attempt in range(self.max_snapshot_retries + 1):
                parts = [shard.snapshot(dependencies) for shard in self.shards]
                federated = tuple(v for part in parts for v in part)
                hit = self.result_cache.get(key, federated)
                if hit is not None:
                    return EngineResult(
                        rows=hit.rows,
                        columns=hit.columns,
                        strategy="bounded",
                        elapsed=0.0,
                        counter=AccessCounter(),
                        plan=prepared.plan,
                        coverage=prepared.coverage,
                        minimization=prepared.minimization,
                        rewrite=prepared.rewrite,
                        cached=cached,
                        result_cached=True,
                    )
                execution = self._executor.execute(
                    prepared.executable,
                    capture_env=self.delta_repair and self.result_cache.capacity > 0,
                    env_rows_budget=self.result_cache.max_env_rows,
                )
                if all(
                    shard.validate(dependencies, part)
                    for shard, part in zip(self.shards, parts)
                ):
                    self.result_cache.put(
                        key,
                        rows=execution.rows,
                        columns=execution.columns,
                        dependencies=dependencies,
                        snapshot=federated,
                        env=execution.env,
                        plan=prepared.executable,
                    )
                    return EngineResult(
                        rows=execution.rows,
                        columns=execution.columns,
                        strategy="bounded",
                        elapsed=execution.elapsed,
                        counter=execution.counter,
                        plan=prepared.plan,
                        coverage=prepared.coverage,
                        minimization=prepared.minimization,
                        rewrite=prepared.rewrite,
                        cached=cached,
                    )
                self.metrics.snapshot_retries += 1
            self.metrics.mixed_epoch_aborts += 1
            raise TransientFault(
                f"federated execution abandoned after {self.max_snapshot_retries + 1} "
                "attempts: shard epochs kept moving during the merge; retry later"
            )

        if not fallback:
            raise NotCoveredError(prepared.coverage.explain())
        return self._federated_fallback(query, prepared, cached)

    def _scatter_fetch(
        self,
        constraint,
        base_relation: str,
        keys: set[Row],
        routed_position: int | None,
        counter: AccessCounter,
        predicate: Callable[[Row], bool] | None = None,
    ) -> set[Row]:
        """One federated fetch step: route or broadcast keys, union partials.

        ``predicate`` is a pushed-down selection each shard applies before
        shipping its partial; accessed-tuple accounting is unaffected.
        """
        self.metrics.scatters += 1
        if predicate is not None:
            self.metrics.select_pushdowns += 1
        if not keys:
            # No input rows → no keys → fetch nothing (the SQLite empty-LHS
            # path would otherwise return its whole index table).
            self.metrics.observe_merge(0)
            return set()
        if routed_position is None:
            groups: list[tuple[Shard, Iterable[Row]]] = [
                (shard, keys) for shard in self.shards
            ]
            self.metrics.broadcasts += 1
        else:
            buckets: dict[int, list[Row]] = {}
            for fetch_key in keys:
                owner = self.partitioner.shard_for_value(
                    base_relation, fetch_key[routed_position]
                )
                buckets.setdefault(owner, []).append(fetch_key)
            groups = [(self.shards[i], buckets[i]) for i in sorted(buckets)]
            self.metrics.routed += 1
        merged: set[Row] = set()
        accessed_before = counter.fetched if counter is not None else 0
        shipped = 0
        for shard, shard_keys in groups:
            if not shard_keys:
                continue
            hits_before, misses_before = shard.cache_counters()
            started = time.perf_counter()
            partial = shard.fetch(
                constraint, base_relation, shard_keys, counter, predicate
            )
            self.metrics.latency.observe(
                f"shard:{shard.name}", time.perf_counter() - started
            )
            hits_after, misses_after = shard.cache_counters()
            self.metrics.shard_cache_hits += hits_after - hits_before
            self.metrics.shard_cache_misses += misses_after - misses_before
            self.metrics.shard_fetches += 1
            shipped += len(partial)
            merged.update(partial)
        if predicate is not None and counter is not None:
            # Shards count every accessed tuple pre-filter (per-shard partials
            # are duplicate-free), so the accounting delta minus what shipped
            # is exactly the rows the pushdown kept off the wire.
            self.metrics.pushdown_rows_filtered += (
                counter.fetched - accessed_before - shipped
            )
        self.metrics.observe_merge(len(merged))
        return merged

    # -- fallback -------------------------------------------------------------------
    def _federated_fallback(
        self, query: Query, prepared: PreparedQuery, cached: bool
    ) -> EngineResult:
        """Conventional evaluation over a gathered copy of the query's relations.

        Uncovered queries have no bounded plan to scatter, so the router
        gathers the full fragments of every relation the query mentions into
        a scratch database and evaluates conventionally there — the honest
        cost of an unbounded query over a federation.  The gather itself is
        epoch-guarded like a covered merge.  The breaker protocol matches the
        engine's: refuse when open, report every outcome.
        """
        breaker = self.fallback_breaker
        if breaker is not None and not breaker.allow():
            raise CircuitOpenError(
                "conventional fallback refused: circuit breaker is open "
                "(recent fallback failures); retry after the cooldown or "
                "rewrite the query into a covered form"
            )
        try:
            # Gather by *base* relation: occurrences may be renamed, but the
            # fragments (and the scratch schema) hold base relations only.
            relations = tuple(dict.fromkeys(r.base for r in query.relations()))
            merged = self._gather(relations)
            baseline = self._fallback_evaluator(
                query, merged, self.access_schema, None
            )
        except Exception:
            if breaker is not None:
                breaker.record_failure()
            raise
        if breaker is not None:
            breaker.record_success()
        return EngineResult(
            rows=baseline.rows,
            columns=baseline.result.columns,
            strategy="conventional",
            elapsed=baseline.elapsed,
            counter=baseline.counter,
            coverage=prepared.coverage,
            cached=cached,
        )

    def _gather(self, relations: tuple[str, ...]) -> Database:
        """Union the shards' fragments of ``relations`` into a scratch database."""
        for _attempt in range(self.max_snapshot_retries + 1):
            parts = [shard.snapshot(relations) for shard in self.shards]
            scratch = Database(self.partitioner.schema)
            for shard in self.shards:
                for name in relations:
                    rows = shard.relation_rows(name)
                    if rows:
                        scratch.insert_many(name, rows)
            if all(
                shard.validate(relations, part)
                for shard, part in zip(self.shards, parts)
            ):
                return scratch
            self.metrics.snapshot_retries += 1
        self.metrics.mixed_epoch_aborts += 1
        raise TransientFault(
            "federated gather abandoned: shard epochs kept moving; retry later"
        )

    # -- writes ---------------------------------------------------------------------
    def apply_updates(self, updates: Iterable) -> "MaintenanceReport":
        """Route a batch to its owning shards and apply each portion batched.

        Updates to the same row always carry the same partition key, so they
        route to the same shard and their relative order is preserved;
        cross-row updates commute.  Each shard applies its portion through
        its own batched maintenance path (one shard-clock bump per portion);
        the router then settles *its* state once for the whole batch — one
        router-clock bump over every touched relation plus one settlement of
        the caches.

        With ``delta_repair`` (the default) the settlement is one derivation
        pass: the routed batch becomes a single
        :class:`~repro.core.deltas.WriteDelta` and every dependent
        result-cache entry is repaired or invalidated per-entry
        (:meth:`_repair_result_cache`); the plan store is untouched because
        prepared plans are data-independent.  Without it, both caches are
        swept targetedly (the legacy contract).

        If a shard aborts its portion, portions already applied stay applied
        (there is no cross-shard transaction — by design: each portion is
        itself atomic-enough under the single-writer serving tier), the
        router still settles over everything that did change — always by
        sweeping, never by repair: a mid-batch fault makes shard state
        suspect — and a :class:`~repro.core.errors.MaintenanceError`
        carrying the merged partial report propagates.
        """
        from ..discovery.maintenance import MaintenanceReport

        updates = list(updates)
        batches: list[list] = [[] for _ in self.shards]
        for update in updates:
            owner = self.partitioner.shard_for_row(update.relation, update.row)
            batches[owner].append(update)

        # Pre-batch federated snapshots, per dependent entry: repair is only
        # sound for entries whose stored snapshot still equals this (the
        # routed batch is then provably the only change since fill).
        pre_entries: list[tuple] = []
        if self.delta_repair:
            write_relations = {update.relation for update in updates}
            for key, entry in self.result_cache.entries_for(write_relations):
                pre = tuple(
                    v
                    for shard in self.shards
                    for v in shard.snapshot(entry.dependencies)
                )
                pre_entries.append((key, entry, pre))

        merged = MaintenanceReport()
        applied: list = []
        failure: MaintenanceError | None = None
        for shard, batch in zip(self.shards, batches):
            if not batch:
                continue
            try:
                report = shard.apply_updates(batch)
            except MaintenanceError as error:
                if error.report is not None:
                    self._merge_report(merged, error.report)
                merged.failed = True
                merged.failed_update = getattr(error.report, "failed_update", None)
                merged.error = str(error)
                failure = error
                break
            self._merge_report(merged, report)
            applied.extend(batch)

        self.metrics.write_batches += 1
        if merged.touched_relations:
            touched = sorted(merged.touched_relations)
            self.clock.bump(touched)
            if self.delta_repair and failure is None:
                self._repair_result_cache(
                    touched, pre_entries, WriteDelta.from_updates(applied)
                )
            else:
                self._discard_compiled(self.plan_cache.invalidate(touched))
                self.result_cache.invalidate(touched)
            merged.version = self.clock.global_version
        if failure is not None:
            raise MaintenanceError(str(failure), report=merged)
        if self.write_observer is not None and applied:
            self.write_observer(applied)
        return merged

    def _repair_result_cache(
        self, touched: list[str], pre_entries: list[tuple], delta: WriteDelta
    ) -> None:
        """Settle dependent result-cache entries after a clean routed batch.

        Per entry, in order: (1) the entry's stored snapshot must equal the
        pre-batch federated snapshot captured in :meth:`apply_updates` —
        otherwise something else (a direct shard write, an earlier batch)
        moved the data since fill and the entry is dropped as ``stale``;
        (2) the entry must carry a captured environment and plan (``no_env``
        otherwise); (3) the deriver decides clean/patch/fallback, scattering
        dirty fetches to the *live* shards; (4) shard epochs are re-validated
        against a post-batch snapshot taken before the derivation — if any
        shard moved mid-derivation the patched rows could mix epochs, so the
        entry is dropped as ``race``.  Only then is the entry re-stamped
        with the post-batch snapshot.
        """
        touched_set = frozenset(touched)
        for key, entry, pre_snapshot in pre_entries:
            scope = tuple(r for r in entry.dependencies if r in touched_set)
            if not scope:
                continue  # the batch's effective writes never reached it
            if entry.snapshot != pre_snapshot:
                self.result_cache.drop(key, reason="stale", relations=scope)
                continue
            if entry.env is None or entry.plan is None:
                self.result_cache.drop(key, reason="no_env", relations=scope)
                continue
            parts = [shard.snapshot(entry.dependencies) for shard in self.shards]
            outcome = self._deriver.derive(entry.plan, entry.env, entry.rows, delta)
            if outcome.status == FALLBACK:
                self.result_cache.drop(key, reason=outcome.reason, relations=scope)
                continue
            if not all(
                shard.validate(entry.dependencies, part)
                for shard, part in zip(self.shards, parts)
            ):
                self.result_cache.drop(key, reason="race", relations=scope)
                continue
            patched = outcome.status == PATCHED
            self.result_cache.repair(
                key,
                rows=outcome.rows if patched else entry.rows,
                env=outcome.env if patched else entry.env,
                snapshot=tuple(v for part in parts for v in part),
                rows_added=outcome.rows_added,
                rows_removed=outcome.rows_removed,
            )

    # -- rebalancing ----------------------------------------------------------------
    def rebalance(
        self, relation: str, key_range: tuple, src: int, dst: int
    ) -> RebalanceReport:
        """Migrate ``relation``'s partition keys in ``[lo, hi)`` from shard
        ``src`` to shard ``dst``, under traffic.

        Epoch-guarded like a routed batch: copy the range to the
        destination, re-validate the source epoch (a racing write undoes
        the copy and retries), flip the partition overlay, drop the source
        copies.  Reads are correct at every intermediate state — see
        :mod:`repro.sharding.rebalance` for the argument.  Raises
        :class:`~repro.core.errors.TransientFault` if the source epoch
        keeps moving (never leaves a torn layout behind).
        """
        return rebalance_key_range(self, relation, key_range, src, dst)

    @staticmethod
    def _merge_report(merged, report) -> None:
        merged.applied += report.applied
        merged.skipped += report.skipped
        merged.violated.extend(report.violated)
        merged.adjusted.update(report.adjusted)
        merged.work_units += report.work_units
        merged.touched_relations.update(report.touched_relations)

    # -- reporting ------------------------------------------------------------------
    def cache_stats(self) -> dict[str, dict[str, int | float]]:
        """Plan-store, result-cache and executor statistics (the engine's interface)."""
        return {
            "plan_store": self.plan_cache.stats(),
            "result_cache": self.result_cache.stats(),
            "executor": self._executor.stats(),
        }

    def replication_stats(self) -> dict:
        """Replica/failover counters summed over the topology's replica sets.

        Plain (unreplicated) shards contribute zeros; the soak report and
        the bench trajectory read this one aggregate instead of re-deriving
        it from per-shard detail.
        """
        sets = [s for s in self.shards if isinstance(s, ReplicaSet)]
        return {
            "replica_sets": len(sets),
            "replicas": sum(len(s.replicas) for s in sets),
            "quarantined": sum(
                1
                for s in sets
                for replica in s.replicas
                if s.health(replica.name).quarantined
            ),
            "failovers": sum(s.failovers for s in sets),
            "hedged_reads": sum(s.hedged_reads for s in sets),
            "quarantines": sum(s.quarantines for s in sets),
            "catch_ups": sum(s.catch_ups for s in sets),
            "rows_resynced": sum(s.rows_resynced for s in sets),
        }

    def stats(self) -> dict:
        """Topology, scatter/gather metrics, and cache statistics, JSON-ready."""
        partitioner = self.partitioner
        base_name = (
            type(partitioner.base).__name__
            if isinstance(partitioner, PartitionOverlay)
            else type(partitioner).__name__
        )
        return {
            "shards": [shard.stats() for shard in self.shards],
            "partitioner": base_name,
            "partition_overrides": getattr(partitioner, "override_count", 0),
            "replication": self.replication_stats(),
            "scatter_gather": self.metrics.snapshot(),
            "caches": self.cache_stats(),
        }


def _clone_fragment(fragment: Database) -> Database:
    """An identical copy of ``fragment`` — same rows, same clock history.

    Replicas must start in lockstep: the clone performs exactly the bump
    pattern :meth:`~repro.sharding.partition.Partitioner.partition` used to
    build the fragment (one ``insert_many`` per non-empty relation, in
    schema order), so member clocks agree and the replica set's lockstep
    validation holds from the first fetch.
    """
    copy = Database(fragment.schema)
    for relation in fragment:
        if len(relation):
            copy.insert_many(relation.schema.name, relation.rows)
    return copy


def build_topology(
    database: Database,
    access_schema: AccessSchema,
    *,
    shards: int = 2,
    replicas: int = 1,
    backends: Sequence[str] | str | None = None,
    partitioner: Partitioner | None = None,
    partition_keys=None,
    plan_store: PlanStore | None = None,
    result_cache_size: int = 256,
    delta_repair: bool = True,
    failure_threshold: int = 3,
    probe_after: int = 8,
    hedge_threshold: float | None = None,
    fallback_breaker: object | None = None,
    write_observer: Callable[[list], None] | None = None,
) -> ShardRouter:
    """Partition ``database`` into a heterogeneous federation and wire a router.

    ``backends`` names each shard's substrate (``"memory"`` or ``"sqlite"``),
    either per-shard or as one string for all; the default alternates
    ``memory, sqlite, memory, …`` so that any multi-shard topology exercises
    one federated plan across *both* backends.  With ``replicas > 1`` each
    logical shard becomes a :class:`~repro.sharding.replica.ReplicaSet` of
    that many members holding identical fragment copies; member substrates
    alternate within the set too, so a federated fetch can fail over from a
    memory member to its SQLite sibling.  All engine shards (and the
    router) share one :class:`~repro.core.planstore.PlanStore` — each query
    is prepared once federation-wide.  ``database`` itself is left
    untouched; the shards own disjoint fragment copies.
    """
    if partitioner is None:
        partitioner = HashPartitioner(database.schema, shards, partition_keys)
    elif partitioner.shard_count != shards:
        raise StorageError(
            f"partitioner is configured for {partitioner.shard_count} shards, "
            f"but shards={shards} was requested"
        )
    if replicas < 1:
        raise StorageError(f"replicas must be >= 1, got {replicas}")
    if backends is None:
        kinds = ["memory" if i % 2 == 0 else "sqlite" for i in range(shards)]
    elif isinstance(backends, str):
        kinds = [backends] * shards
    else:
        kinds = list(backends)
        if len(kinds) != shards:
            raise StorageError(
                f"{shards} shards need {shards} backend kinds, got {len(kinds)}"
            )
    store = plan_store if plan_store is not None else PlanStore(128)

    def _make(kind: str, name: str, fragment: Database) -> Shard:
        if kind == "memory":
            return EngineShard(name, fragment, access_schema, plan_store=store)
        if kind == "sqlite":
            return SQLiteShard(name, fragment, access_schema)
        raise StorageError(
            f"unknown shard backend {kind!r}; expected 'memory' or 'sqlite'"
        )

    fragments = partitioner.partition(database)
    built: list[Shard] = []
    for index, (kind, fragment) in enumerate(zip(kinds, fragments)):
        if replicas == 1:
            built.append(_make(kind, f"shard{index}-{kind}", fragment))
            continue
        members: list[Shard] = []
        for j in range(replicas):
            member_kind = (
                kind if j % 2 == 0 else ("sqlite" if kind == "memory" else "memory")
            )
            member_fragment = fragment if j == 0 else _clone_fragment(fragment)
            members.append(
                _make(member_kind, f"shard{index}r{j}-{member_kind}", member_fragment)
            )
        built.append(
            ReplicaSet(
                f"shard{index}",
                members,
                failure_threshold=failure_threshold,
                probe_after=probe_after,
                hedge_threshold=hedge_threshold,
            )
        )
    return ShardRouter(
        built,
        partitioner,
        access_schema,
        plan_store=store,
        result_cache_size=result_cache_size,
        delta_repair=delta_repair,
        fallback_breaker=fallback_breaker,
        write_observer=write_observer,
    )
