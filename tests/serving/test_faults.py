"""Unit tests for the deterministic fault-injection layer."""

import pytest

from repro.core.engine import BoundedEngine
from repro.core.errors import TransientFault
from repro.serving.faults import FaultInjector, FaultSpec
from repro.storage.database import Database


class TestFaultSpec:
    def test_default_spec_is_inert(self):
        assert not FaultSpec().active

    def test_any_knob_activates(self):
        assert FaultSpec(latency=0.001).active
        assert FaultSpec(error_rate=0.5).active
        assert FaultSpec(fail_every=3).active
        assert FaultSpec(latency_jitter=0.001).active


class TestPerturb:
    def test_unconfigured_site_is_a_noop(self):
        injector = FaultInjector(seed=0)
        injector.perturb("nowhere")
        assert injector.calls("nowhere") == 0

    def test_fail_every_is_exact(self):
        injector = FaultInjector(seed=0)
        injector.configure("site", FaultSpec(fail_every=3))
        failures = []
        for call in range(1, 10):
            try:
                injector.perturb("site")
            except TransientFault:
                failures.append(call)
        assert failures == [3, 6, 9]
        assert injector.injected["site"] == 3

    def test_error_rate_one_always_fails(self):
        injector = FaultInjector(seed=0)
        injector.configure("site", FaultSpec(error_rate=1.0))
        with pytest.raises(TransientFault):
            injector.perturb("site")

    def test_error_schedule_is_deterministic_per_seed(self):
        def schedule(seed: int) -> list[bool]:
            injector = FaultInjector(seed=seed)
            injector.configure("site", FaultSpec(error_rate=0.3))
            outcomes = []
            for _ in range(50):
                try:
                    injector.perturb("site")
                    outcomes.append(False)
                except TransientFault:
                    outcomes.append(True)
            return outcomes

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)

    def test_sites_have_independent_streams(self):
        injector = FaultInjector(seed=0)
        injector.configure("a", FaultSpec(error_rate=0.5))
        outcomes_a = []
        for _ in range(30):
            try:
                injector.perturb("a")
                outcomes_a.append(False)
            except TransientFault:
                outcomes_a.append(True)

        # Re-run site "a" with site "b" also armed: a's schedule must not move.
        fresh = FaultInjector(seed=0)
        fresh.configure("a", FaultSpec(error_rate=0.5))
        fresh.configure("b", FaultSpec(error_rate=0.5))
        outcomes_again = []
        for _ in range(30):
            try:
                fresh.perturb("b")  # interleave b's draws
            except TransientFault:
                pass
            try:
                fresh.perturb("a")
                outcomes_again.append(False)
            except TransientFault:
                outcomes_again.append(True)
        assert outcomes_a == outcomes_again

    def test_latency_uses_injected_sleeper(self):
        slept = []
        injector = FaultInjector(seed=0, sleeper=slept.append)
        injector.configure("site", FaultSpec(latency=0.25))
        injector.perturb("site")
        assert slept == [0.25]


class TestInstallation:
    def test_wrap_preserves_return_value_and_counts_calls(self):
        injector = FaultInjector(seed=0)
        injector.configure("site", FaultSpec(latency=0.0, fail_every=100))
        wrapped = injector.wrap("site", lambda x: x * 2)
        assert wrapped(21) == 42
        assert injector.calls("site") == 1

    def test_install_writes_faults_before_mutation(self, fb_database):
        injector = FaultInjector(seed=0)
        injector.configure("storage.write", FaultSpec(error_rate=1.0))
        injector.install_writes(fb_database)
        name = fb_database.relation_names()[0]
        instance = fb_database.relation(name)
        before = set(instance.rows)
        row = next(iter(before))
        with pytest.raises(TransientFault):
            instance.delete(row)
        assert set(instance.rows) == before  # the delete never happened

    def test_uninstall_restores_instance_methods(self, fb_database):
        name = fb_database.relation_names()[0]
        instance = fb_database.relation(name)
        assert "insert" not in instance.__dict__
        with FaultInjector(seed=0) as injector:
            injector.configure("storage.write", FaultSpec(fail_every=1000))
            injector.install_writes(fb_database, [name])
            assert "insert" in instance.__dict__
        assert "insert" not in instance.__dict__  # class method shines through again
        assert "delete" not in instance.__dict__

    def test_install_engine_wraps_executor_and_fallback(
        self, fb_database, fb_access, fb_q0_prime
    ):
        engine = BoundedEngine(fb_database, fb_access, check_constraints=False)
        injector = FaultInjector(seed=0)
        injector.configure("executor", FaultSpec(error_rate=1.0))
        injector.install_engine(engine)
        with pytest.raises(TransientFault):
            engine.execute(fb_q0_prime)
        injector.uninstall()
        result = engine.execute(fb_q0_prime)  # restored: executes normally
        assert result.strategy == "bounded"

    def test_stats_reports_calls_and_injections(self):
        injector = FaultInjector(seed=0)
        injector.configure("site", FaultSpec(fail_every=2))
        for _ in range(4):
            try:
                injector.perturb("site")
            except TransientFault:
                pass
        assert injector.stats() == {"site": {"calls": 4, "injected": 2}}
