"""Repeated-query throughput: the plan cache + pipelined executor hot path.

A serving engine sees the same (parameterized) queries over and over; the
paper's boundedness guarantees make each execution touch only ``D_Q``, but the
wall-clock then hinges on how much work happens *around* the data.  This
benchmark measures queries/second on repeated covered queries in two modes:

* **cold** — plan cache disabled: every execution re-runs ``CovChk``,
  ``minA``, ``QPlan`` and plan optimization from scratch;
* **warm** — plan cache enabled: after the first execution of each query,
  repeats skip straight to the compiled plan.

It also cross-checks correctness: for every query, the rows produced with
cache+optimizer on, cache off, optimizer off, and by the reference evaluator
must be identical.

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_hot_path.py --quick --output BENCH_hot_path.json

The JSON report records per-workload cold/warm throughput, the speedup, and
the engine's cache statistics, so the perf trajectory is a tracked number.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:  # allow running without an editable install
    sys.path.insert(0, str(SRC))

from repro.bench.experiments import select_covered_queries  # noqa: E402
from repro.core.engine import BoundedEngine  # noqa: E402
from repro.evaluator.algebra import evaluate  # noqa: E402
from repro.workloads import WORKLOADS  # noqa: E402


def _throughput(engine: BoundedEngine, queries, repeats: int) -> tuple[float, int]:
    """Execute each query ``repeats`` times; returns (queries/sec, executions)."""
    executions = 0
    started = time.perf_counter()
    for _ in range(repeats):
        for query in queries:
            engine.execute(query)
            executions += 1
    elapsed = time.perf_counter() - started
    return (executions / elapsed) if elapsed > 0 else float("inf"), executions


def bench_workload(name: str, *, scale: int, query_count: int, repeats: int) -> dict:
    workload = WORKLOADS[name]
    database = workload.database(scale=scale, seed=7)
    queries = select_covered_queries(
        workload, count=query_count, seed=7, database=database
    )
    if not queries:
        return {"workload": name, "skipped": "no covered queries generated"}

    cold = BoundedEngine(
        database, workload.access_schema, check_constraints=False, plan_cache_size=0
    )
    warm = BoundedEngine(
        database, workload.access_schema, check_constraints=False
    )
    plain = BoundedEngine(
        database,
        workload.access_schema,
        check_constraints=False,
        plan_cache_size=0,
        optimize=False,
    )

    # Correctness first: cache on/off, optimizer on/off, reference semantics.
    for query in queries:
        expected = evaluate(query, database).rows
        for engine in (cold, warm, plain):
            rows = engine.execute(query).rows
            if rows != expected:
                raise AssertionError(
                    f"{name}: result mismatch for\n{query}\n"
                    f"expected {len(expected)} rows, got {len(rows)}"
                )

    warm.plan_cache.invalidate()  # measure the warm path from a clean cache
    warm_up_qps, _ = _throughput(warm, queries, 1)  # first pass populates the cache
    cold_qps, cold_runs = _throughput(cold, queries, repeats)
    warm_qps, warm_runs = _throughput(warm, queries, repeats)

    return {
        "workload": name,
        "scale": scale,
        "queries": len(queries),
        "executions": {"cold": cold_runs, "warm": warm_runs},
        "cold_qps": round(cold_qps, 2),
        "warm_first_pass_qps": round(warm_up_qps, 2),
        "warm_qps": round(warm_qps, 2),
        "speedup": round(warm_qps / cold_qps, 2) if cold_qps else None,
        "cache": warm.cache_stats(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small scale / few repeats (CI mode)"
    )
    parser.add_argument("--scale", type=int, default=None, help="workload scale")
    parser.add_argument("--queries", type=int, default=None, help="covered queries per workload")
    parser.add_argument("--repeats", type=int, default=None, help="passes over the query set")
    parser.add_argument(
        "--output", type=Path, default=None, help="write the JSON report to this path"
    )
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (120 if args.quick else 220)
    query_count = args.queries if args.queries is not None else (3 if args.quick else 5)
    repeats = args.repeats if args.repeats is not None else (5 if args.quick else 20)

    results = []
    for name in sorted(WORKLOADS):
        result = bench_workload(
            name, scale=scale, query_count=query_count, repeats=repeats
        )
        results.append(result)
        if "skipped" in result:
            print(f"{name}: skipped ({result['skipped']})")
            continue
        print(
            f"{name}: cold {result['cold_qps']:.1f} q/s, "
            f"warm {result['warm_qps']:.1f} q/s, "
            f"speedup {result['speedup']:.2f}x "
            f"(hit rate {result['cache']['hit_rate']:.2f})"
        )

    measured = [r for r in results if "speedup" in r and r["speedup"] is not None]
    overall = (
        round(sum(r["speedup"] for r in measured) / len(measured), 2) if measured else None
    )
    report = {
        "benchmark": "hot_path",
        "mode": "quick" if args.quick else "full",
        "scale": scale,
        "repeats": repeats,
        "workloads": results,
        "mean_speedup": overall,
    }
    print(f"mean warm/cold speedup: {overall}x")

    if args.output is not None:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")

    return 0


if __name__ == "__main__":
    raise SystemExit(main())
