"""AIRCA — US air-carrier workload (synthetic stand-in for the 60 GB dataset).

The paper's AIRCA combines Flight On-Time Performance and Carrier Statistics
data (7 tables, 358 attributes, 162 M tuples).  This module reproduces the
*structure* the experiments rely on: the same kinds of relations, the access
constraints the paper quotes (e.g. ``OnTimePerformance(Origin → AirlineID,
28)``), and a generator whose output satisfies every constraint at any scale,
so that access ratios and scaling behaviour can be measured faithfully on a
laptop-sized instance.
"""

from __future__ import annotations

import random

from ..core.access import AccessConstraint, AccessSchema
from ..core.schema import DatabaseSchema
from ..storage.database import Database
from .base import WorkloadSpec

STATES = (
    "AL", "AK", "AZ", "CA", "CO", "FL", "GA", "IL", "MA", "NY",
    "OR", "PA", "TX", "UT", "VA", "WA",
)
DELAY_CAUSES = ("carrier", "weather", "nas", "security", "late_aircraft")
MONTHS = tuple(range(1, 13))
YEARS = tuple(range(1987, 2015))
PLANE_MODELS = ("B737", "B747", "B757", "A319", "A320", "A321", "E175", "CRJ9")


def schema() -> DatabaseSchema:
    """Seven relations mirroring the AIRCA tables used in the experiments."""
    return DatabaseSchema.from_dict(
        {
            "flights": [
                "flight_id", "flight_date", "month", "year", "origin", "dest",
                "airline_id", "dep_delay", "arr_delay",
            ],
            "carriers": ["airline_id", "carrier_name", "country"],
            "airports": ["airport_id", "city", "state"],
            "segments": ["segment_id", "airline_id", "origin", "dest", "year", "passengers"],
            "markets": ["market_id", "airline_id", "year", "revenue"],
            "planes": ["tail_num", "airline_id", "model", "year_built"],
            "delays": ["delay_id", "flight_id", "cause", "minutes"],
        }
    )


def access_schema(database_schema: DatabaseSchema | None = None) -> AccessSchema:
    """The access constraints of the AIRCA workload.

    The first constraint is the one quoted in Section 8: each airport hosts
    carriers of at most 28 airlines.  The rest are keys, bounded fan-outs and
    small-domain constraints in the same spirit.
    """
    database_schema = database_schema or schema()
    flights_all = list(database_schema["flights"].attributes)
    carriers_all = list(database_schema["carriers"].attributes)
    airports_all = list(database_schema["airports"].attributes)
    segments_all = list(database_schema["segments"].attributes)
    markets_all = list(database_schema["markets"].attributes)
    planes_all = list(database_schema["planes"].attributes)
    delays_all = list(database_schema["delays"].attributes)
    return AccessSchema(
        [
            AccessConstraint.of("flights", "origin", "airline_id", 28, name="origin-airlines"),
            AccessConstraint.of("flights", "flight_id", flights_all, 1, name="flight-key"),
            AccessConstraint.of(
                "flights", ["airline_id", "flight_date"], "flight_id", 60, name="airline-daily"
            ),
            AccessConstraint.of(
                "flights", ["origin", "flight_date"], "flight_id", 80, name="origin-daily"
            ),
            AccessConstraint.of("flights", (), "month", 12, name="months"),
            AccessConstraint.of("flights", (), "year", len(YEARS), name="years"),
            AccessConstraint.of("flights", "flight_id", ["dep_delay", "arr_delay"], 1,
                                name="flight-delays"),
            AccessConstraint.of("carriers", "airline_id", carriers_all, 1, name="carrier-key"),
            AccessConstraint.of("carriers", (), "country", 8, name="carrier-countries"),
            AccessConstraint.of("airports", "airport_id", airports_all, 1, name="airport-key"),
            AccessConstraint.of("airports", (), "state", len(STATES), name="states"),
            AccessConstraint.of("airports", "state", "airport_id", 40, name="state-airports"),
            AccessConstraint.of("segments", "segment_id", segments_all, 1, name="segment-key"),
            AccessConstraint.of(
                "segments", ["airline_id", "year"], "segment_id", 40, name="airline-segments"
            ),
            AccessConstraint.of("markets", "market_id", markets_all, 1, name="market-key"),
            AccessConstraint.of(
                "markets", ["airline_id", "year"], "market_id", 12, name="airline-markets"
            ),
            AccessConstraint.of("planes", "tail_num", planes_all, 1, name="plane-key"),
            AccessConstraint.of("planes", "airline_id", "tail_num", 60, name="airline-fleet"),
            AccessConstraint.of("planes", (), "model", len(PLANE_MODELS), name="plane-models"),
            AccessConstraint.of("delays", "delay_id", delays_all, 1, name="delay-key"),
            AccessConstraint.of("delays", "flight_id", "delay_id", 4, name="flight-delay-rows"),
            AccessConstraint.of("delays", (), "cause", len(DELAY_CAUSES), name="delay-causes"),
        ],
        schema=database_schema,
    )


def generate(scale: int = 200, seed: int = 0) -> Database:
    """Generate an AIRCA instance; ``scale`` controls the number of flight days.

    Every constraint of :func:`access_schema` is satisfied by construction:
    airlines per airport are capped at 20 (< 28), flights per airline per day
    at 3 (< 60), delay rows per flight at 2 (< 4), and so on.
    """
    rng = random.Random(seed)
    database = Database(schema())

    n_airports = max(6, min(40, scale // 10))
    n_airlines = max(4, min(20, scale // 20))
    n_days = max(10, scale // 2)
    years = YEARS[-3:]

    airports = [f"AP{i:03d}" for i in range(n_airports)]
    airlines = [f"AL{i:02d}" for i in range(n_airlines)]

    for airport in airports:
        database.insert("airports", (airport, f"city_{airport}", rng.choice(STATES)))
    for airline in airlines:
        database.insert(
            "carriers", (airline, f"carrier_{airline}", rng.choice(("US", "CA", "MX", "UK")))
        )

    flight_counter = 0
    delay_counter = 0
    flight_ids: list[str] = []
    for day in range(n_days):
        year = years[day % len(years)]
        month = MONTHS[day % 12]
        flight_date = f"{year}-{month:02d}-{(day % 28) + 1:02d}"
        for airline in airlines:
            for _ in range(rng.randint(0, 3)):
                origin, dest = rng.sample(airports, 2)
                flight_id = f"F{flight_counter:06d}"
                flight_counter += 1
                dep_delay = rng.randint(-5, 90)
                arr_delay = dep_delay + rng.randint(-15, 30)
                database.insert(
                    "flights",
                    (flight_id, flight_date, month, year, origin, dest, airline,
                     dep_delay, arr_delay),
                )
                flight_ids.append(flight_id)
                if dep_delay > 30 and rng.random() < 0.5:
                    for _ in range(rng.randint(1, 2)):
                        database.insert(
                            "delays",
                            (f"D{delay_counter:06d}", flight_id, rng.choice(DELAY_CAUSES),
                             rng.randint(5, 120)),
                        )
                        delay_counter += 1

    segment_counter = 0
    market_counter = 0
    for airline in airlines:
        for year in years:
            for _ in range(rng.randint(2, 8)):
                origin, dest = rng.sample(airports, 2)
                database.insert(
                    "segments",
                    (f"S{segment_counter:06d}", airline, origin, dest, year,
                     rng.randint(1000, 250000)),
                )
                segment_counter += 1
            for _ in range(rng.randint(1, 4)):
                database.insert(
                    "markets",
                    (f"M{market_counter:06d}", airline, year, rng.randint(100, 9000)),
                )
                market_counter += 1
        for plane_index in range(rng.randint(2, 10)):
            database.insert(
                "planes",
                (f"N{airline}{plane_index:03d}", airline, rng.choice(PLANE_MODELS),
                 rng.randint(1985, 2014)),
            )

    return database


JOIN_EDGES = (
    (("flights", "airline_id"), ("carriers", "airline_id")),
    (("flights", "origin"), ("airports", "airport_id")),
    (("flights", "dest"), ("airports", "airport_id")),
    (("flights", "flight_id"), ("delays", "flight_id")),
    (("segments", "airline_id"), ("carriers", "airline_id")),
    (("segments", "origin"), ("airports", "airport_id")),
    (("markets", "airline_id"), ("carriers", "airline_id")),
    (("planes", "airline_id"), ("carriers", "airline_id")),
    (("segments", "airline_id"), ("flights", "airline_id")),
)

WORKLOAD = WorkloadSpec(
    name="AIRCA",
    schema=schema(),
    access_schema=access_schema(),
    generate=generate,
    join_edges=JOIN_EDGES,
    description="US air carriers: on-time performance and carrier statistics",
    default_scale=200,
)
