"""Execution of bounded query plans (``evalQP``).

The executor runs a :class:`~repro.core.plan.BoundedPlan` against a database
whose constraint indexes have been materialized as an
:class:`~repro.storage.index.IndexSet`.  Data is accessed **only** through
``fetch`` steps (index lookups); every access is recorded on an
:class:`~repro.storage.counters.AccessCounter`, so the measured ``|D_Q|`` of
the experiments is exact.

Plans are executed in two phases.  ``compile`` lowers every step to a small
kernel closure with all name-to-position resolution, predicate compilation
and index lookup done once up front; ``execute`` then pipelines the kernels
over the step environment, freezing only the output step into the returned
:class:`~repro.evaluator.algebra.ResultSet`.  Compiled plans are memoized
per plan object (the hot path of :class:`~repro.core.engine.BoundedEngine`
executes the same cached plan over and over), so a warm execution does no
per-step interpretation work beyond running the kernels.

Two execution modes share the :class:`CompiledPlan` seam:

* **row** — the original tuple-at-a-time kernels over mutable-set
  intermediates (best for tiny/point plans, where batch setup would
  dominate);
* **columnar** — the batch-wise kernels of :mod:`repro.evaluator.columnar`
  over :class:`~repro.evaluator.columnar.ColumnBatch` intermediates (the
  cold-path fast mode: vectorized selection, columnar hash joins, zero-copy
  projection, dictionary-encoded string columns).

The executor's ``mode`` is ``"row"``, ``"columnar"``, or ``"auto"``, in
which case :func:`repro.core.optimizer.choose_executor_mode` picks per plan
from its static bounds.  Both modes produce identical frozen row sets — a
property pinned by the randomized equivalence tests.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..core.access import AccessConstraint
from ..core.errors import PlanError
from ..core.plan import (
    BoundedPlan,
    ColumnPredicate,
    ColumnRef,
    ConstOp,
    DifferenceOp,
    FetchOp,
    HashJoinOp,
    IntersectOp,
    PlanStep,
    ProductOp,
    ProjectOp,
    RenameOp,
    SelectOp,
    UnionOp,
    UnitOp,
)
from ..storage.counters import AccessCounter
from ..storage.database import Database
from ..storage.index import ConstraintIndex, IndexSet
from .algebra import ResultSet, _compare
from .columnar import ColumnarCompiler, FetchEncoder

Row = tuple

#: a compiled plan step: (environment of prior step results, counter) -> rows
Kernel = Callable[[list, AccessCounter], "set[Row] | frozenset[Row]"]

#: how many compiled plans each executor keeps around
_COMPILED_CACHE_SIZE = 64

#: valid executor modes ("auto" resolves per plan at compile time)
EXECUTOR_MODES = ("auto", "row", "columnar")


@dataclass
class ExecutionResult:
    """The outcome of executing a bounded plan.

    ``executor_mode`` names the kernel family that ran (``"row"`` or
    ``"columnar"``); ``kernel_batches`` counts kernel invocations and
    ``rows_processed`` the total rows emitted across all steps, so the
    optimizer's row-vs-columnar choices are auditable per execution.
    ``step_cardinalities`` breaks ``rows_processed`` down per step.

    ``env`` is the frozen per-step row environment, captured only when the
    caller asked for it (``capture_env=True``) — it is the
    memoized-intermediates handle the delta-maintenance path
    (:mod:`repro.core.deltas`) repairs cached results from.  Columnar
    intermediates are frozen back to row sets (``to_frozenset``), which both
    kernel families produce identically per step; a caller-supplied
    ``env_rows_budget`` skips capture for executions whose total
    intermediate volume would make freezing (and caching) a bad trade —
    notably virtual cross-products the columnar executor never materializes.
    """

    result: ResultSet
    counter: AccessCounter
    elapsed: float
    step_cardinalities: Mapping[int, int] = field(default_factory=dict)
    executor_mode: str = "row"
    kernel_batches: int = 0
    rows_processed: int = 0
    env: tuple[frozenset[Row], ...] | None = None

    @property
    def rows(self) -> frozenset[Row]:
        return self.result.rows

    @property
    def columns(self) -> tuple[str, ...]:
        return self.result.columns

    def access_ratio(self, database_size: int) -> float:
        """``P(D_Q)`` — fraction of the database accessed by this execution."""
        return self.counter.ratio(database_size)


@dataclass
class CompiledPlan:
    """A bounded plan lowered to per-step kernels, ready for repeated runs.

    ``mode`` records which kernel family the plan was lowered to: ``"row"``
    kernels exchange sets of row tuples through the environment,
    ``"columnar"`` kernels exchange :class:`~repro.evaluator.columnar.
    ColumnBatch` instances.  The freeze back to the row-set contract happens
    in :meth:`PlanExecutor.execute`, so every consumer downstream of the
    executor sees identical results either way.
    """

    plan: BoundedPlan
    kernels: tuple[Kernel, ...]
    columns: tuple[tuple[str, ...], ...]
    output: int
    mode: str = "row"


def _column_positions(columns: Sequence[str]) -> dict[str, int]:
    """Name → first position, built once per compilation."""
    positions: dict[str, int] = {}
    for index, column in enumerate(columns):
        positions.setdefault(column, index)
    return positions


def _position_of(positions: Mapping[str, int], column: str, step: PlanStep) -> int:
    try:
        return positions[column]
    except KeyError:
        raise PlanError(
            f"step T{step.id} references missing column {column!r}; "
            f"available: {sorted(positions)}"
        ) from None


class PlanExecutor:
    """Executes bounded plans against a database through its constraint indexes.

    ``mode`` selects the kernel family plans are lowered to: ``"row"``,
    ``"columnar"``, or ``"auto"`` (per-plan cost-based choice via
    :func:`repro.core.optimizer.choose_executor_mode`).
    ``columnar_dictionary`` enables dictionary encoding of string columns in
    columnar fetches (persistent per-index dictionaries, amortized across
    executions).
    """

    def __init__(
        self,
        database: Database,
        indexes: IndexSet,
        *,
        mode: str = "row",
        columnar_dictionary: bool = True,
    ):
        if mode not in EXECUTOR_MODES:
            raise PlanError(
                f"unknown executor mode {mode!r}; expected one of {EXECUTOR_MODES}"
            )
        self.database = database
        self.indexes = indexes
        self.mode = mode
        self.columnar_dictionary = columnar_dictionary
        self._compiled: OrderedDict[int, CompiledPlan] = OrderedDict()
        #: index id -> {column position -> Dictionary}; keyed by identity and
        #: kept alongside the index handles the compiled kernels close over.
        self._fetch_dictionaries: dict[int, dict] = {}
        self._counters = {
            "row_executions": 0,
            "columnar_executions": 0,
            "kernel_batches": 0,
            "rows_processed": 0,
            "auto_row_choices": 0,
            "auto_columnar_choices": 0,
        }

    def stats(self) -> dict[str, int]:
        """Cumulative executor observability: executions by mode, kernel
        batches run, rows processed, and how ``auto`` resolved per compile."""
        return dict(self._counters)

    def execute(
        self,
        plan: BoundedPlan,
        counter: AccessCounter | None = None,
        *,
        capture_env: bool = False,
        env_rows_budget: int | None = None,
    ) -> ExecutionResult:
        """Run ``plan`` and return its result with exact access accounting.

        ``capture_env`` freezes every step's row set into
        :attr:`ExecutionResult.env` so the caller can cache the
        intermediates for delta repair; when ``env_rows_budget`` is given,
        capture is skipped (``env=None``) if the summed step cardinalities
        exceed it.
        """
        counter = counter if counter is not None else AccessCounter()
        compiled = self.compile(plan)
        started = time.perf_counter()
        env: list = [None] * len(compiled.kernels)
        cardinalities: dict[int, int] = {}
        for step_id, kernel in enumerate(compiled.kernels):
            rows = kernel(env, counter)
            env[step_id] = rows
            cardinalities[step_id] = len(rows)
        output = env[compiled.output]
        result = ResultSet(
            columns=compiled.columns[compiled.output],
            rows=output.to_frozenset()
            if compiled.mode == "columnar"
            else frozenset(output),
        )
        captured: tuple[frozenset[Row], ...] | None = None
        if capture_env and (
            env_rows_budget is None
            or sum(cardinalities.values()) <= env_rows_budget
        ):
            captured = tuple(
                step.to_frozenset()
                if compiled.mode == "columnar"
                else (step if isinstance(step, frozenset) else frozenset(step))
                for step in env
            )
        elapsed = time.perf_counter() - started
        rows_processed = sum(cardinalities.values())
        self._counters[f"{compiled.mode}_executions"] += 1
        self._counters["kernel_batches"] += len(compiled.kernels)
        self._counters["rows_processed"] += rows_processed
        return ExecutionResult(
            result=result,
            counter=counter,
            elapsed=elapsed,
            step_cardinalities=cardinalities,
            executor_mode=compiled.mode,
            kernel_batches=len(compiled.kernels),
            rows_processed=rows_processed,
            env=captured,
        )

    # ------------------------------------------------------------------
    def compile(self, plan: BoundedPlan) -> CompiledPlan:
        """Lower ``plan`` to kernels, memoized per plan object."""
        cached = self._compiled.get(id(plan))
        if cached is not None and cached.plan is plan:
            self._compiled.move_to_end(id(plan))
            return cached
        compiled = self._compile(plan)
        self._compiled[id(plan)] = compiled
        if len(self._compiled) > _COMPILED_CACHE_SIZE:
            self._compiled.popitem(last=False)
        return compiled

    def discard(self, plan: BoundedPlan) -> None:
        """Release the compiled kernels of ``plan``, if memoized.

        Called by the engine when a plan-store entry is invalidated, so the
        executor does not pin kernels (and their closed-over index lookups)
        for plans that will never run again.
        """
        cached = self._compiled.get(id(plan))
        if cached is not None and cached.plan is plan:
            del self._compiled[id(plan)]

    def _resolve_mode(self, plan: BoundedPlan) -> str:
        """The kernel family for ``plan``: forced, or cost-chosen for auto."""
        if self.mode != "auto":
            return self.mode
        from ..core.optimizer import choose_executor_mode  # lazy: avoids a cycle

        mode = choose_executor_mode(plan)
        self._counters[f"auto_{mode}_choices"] += 1
        return mode

    def _encoder_for(self, index: ConstraintIndex) -> FetchEncoder | None:
        if not self.columnar_dictionary:
            return None
        return FetchEncoder(self._fetch_dictionaries.setdefault(id(index), {}))

    def _compile(self, plan: BoundedPlan) -> CompiledPlan:
        mode = self._resolve_mode(plan)
        if mode == "columnar":
            compiler = ColumnarCompiler(
                plan,
                lambda constraint: self._resolve_index(plan, constraint),
                self._encoder_for,
            )
            kernels, columns = compiler.compile()
            return CompiledPlan(
                plan=plan,
                kernels=kernels,
                columns=columns,
                output=plan.output,
                mode="columnar",
            )
        kernels: list[Kernel] = []
        columns: list[tuple[str, ...]] = []
        for position, step in enumerate(plan.steps):
            if step.id != position:
                raise PlanError(
                    f"plan steps are not densely numbered: T{step.id} at position {position}"
                )
            kernel, step_columns = self._compile_step(plan, step, columns)
            kernels.append(kernel)
            columns.append(step_columns)
        if plan.output < 0 or plan.output >= len(kernels):
            raise PlanError(f"output step T{plan.output} does not exist")
        return CompiledPlan(
            plan=plan, kernels=tuple(kernels), columns=tuple(columns), output=plan.output
        )

    def _compile_step(
        self, plan: BoundedPlan, step: PlanStep, columns: list[tuple[str, ...]]
    ) -> tuple[Kernel, tuple[str, ...]]:
        op = step.op
        if isinstance(op, ConstOp):
            rows = frozenset({(op.value,)})
            return (lambda env, counter, _rows=rows: _rows), (op.column,)
        if isinstance(op, UnitOp):
            rows = frozenset({()})
            return (lambda env, counter, _rows=rows: _rows), ()
        if isinstance(op, FetchOp):
            return self._compile_fetch(plan, step, columns[op.inputs[0]])
        if isinstance(op, ProjectOp):
            return self._compile_project(step, columns[op.inputs[0]])
        if isinstance(op, SelectOp):
            source = op.inputs[0]
            matcher = _compile_predicates(op.predicates, columns[source])

            def select_kernel(env, counter, _src=source, _match=matcher):
                return {row for row in env[_src] if _match(row)}

            return select_kernel, columns[source]
        if isinstance(op, RenameOp):
            source = op.inputs[0]
            renamed = tuple(op.mapping.get(c, c) for c in columns[source])
            return (lambda env, counter, _src=source: env[_src]), renamed
        if isinstance(op, ProductOp):
            left, right = op.inputs

            def product_kernel(env, counter, _l=left, _r=right):
                right_rows = env[_r]
                return {lr + rr for lr in env[_l] for rr in right_rows}

            return product_kernel, columns[left] + columns[right]
        if isinstance(op, HashJoinOp):
            return self._compile_hash_join(step, columns)
        if isinstance(op, (UnionOp, DifferenceOp, IntersectOp)):
            left, right = op.inputs
            if len(columns[left]) != len(columns[right]):
                raise PlanError(
                    f"step T{step.id}: operands have arities {len(columns[left])} "
                    f"and {len(columns[right])}"
                )
            if isinstance(op, UnionOp):
                kernel: Kernel = lambda env, counter, _l=left, _r=right: env[_l] | env[_r]
            elif isinstance(op, DifferenceOp):
                kernel = lambda env, counter, _l=left, _r=right: env[_l] - env[_r]
            else:
                kernel = lambda env, counter, _l=left, _r=right: env[_l] & env[_r]
            return kernel, columns[left]
        raise PlanError(f"unknown plan operator {type(op).__name__} in step T{step.id}")

    def _compile_fetch(
        self, plan: BoundedPlan, step: PlanStep, source_columns: tuple[str, ...]
    ) -> tuple[Kernel, tuple[str, ...]]:
        op: FetchOp = step.op  # type: ignore[assignment]
        index = self._resolve_index(plan, op.constraint)
        positions = _column_positions(source_columns)
        key_positions = tuple(_position_of(positions, c, step) for c in op.key_columns)
        source = op.inputs[0]

        def fetch_kernel(
            env, counter, _src=source, _kp=key_positions, _lookup=index.lookup
        ):
            fetched: set[Row] = set()
            seen: set[Row] = set()
            for row in env[_src]:
                key = tuple(row[p] for p in _kp)
                if key not in seen:
                    seen.add(key)
                    fetched.update(_lookup(key, counter))
            return fetched

        # Index tuples are aligned with sorted(lhs | rhs); so are the step's columns.
        return fetch_kernel, step.columns

    def _compile_project(
        self, step: PlanStep, source_columns: tuple[str, ...]
    ) -> tuple[Kernel, tuple[str, ...]]:
        op: ProjectOp = step.op  # type: ignore[assignment]
        positions_by_name = _column_positions(source_columns)
        positions = tuple(
            _position_of(positions_by_name, c, step) for c in op.columns
        )
        names = op.output_names if op.output_names is not None else op.columns
        source = op.inputs[0]
        if positions == tuple(range(len(source_columns))):
            # Width-preserving projection: rows pass through untouched.
            return (lambda env, counter, _src=source: env[_src]), tuple(names)
        if len(positions) == 1:
            single = positions[0]

            def project_one(env, counter, _src=source, _p=single):
                return {(row[_p],) for row in env[_src]}

            return project_one, tuple(names)

        def project_kernel(env, counter, _src=source, _ps=positions):
            return {tuple(row[p] for p in _ps) for row in env[_src]}

        return project_kernel, tuple(names)

    def _compile_hash_join(
        self, step: PlanStep, columns: list[tuple[str, ...]]
    ) -> tuple[Kernel, tuple[str, ...]]:
        op: HashJoinOp = step.op  # type: ignore[assignment]
        left, right = op.inputs
        left_columns, right_columns = columns[left], columns[right]
        left_positions = _column_positions(left_columns)
        right_positions = _column_positions(right_columns)
        build_positions = tuple(
            _position_of(right_positions, r, step) for _, r in op.pairs
        )
        probe_positions = tuple(
            _position_of(left_positions, l, step) for l, _ in op.pairs
        )
        combined = left_columns + right_columns
        matcher = _compile_predicates(op.residual, combined) if op.residual else None

        def join_kernel(
            env,
            counter,
            _l=left,
            _r=right,
            _probe=probe_positions,
            _build=build_positions,
            _match=matcher,
        ):
            buckets: dict[Row, list[Row]] = {}
            for row in env[_r]:
                buckets.setdefault(tuple(row[p] for p in _build), []).append(row)
            joined: set[Row] = set()
            for row in env[_l]:
                matches = buckets.get(tuple(row[p] for p in _probe))
                if not matches:
                    continue
                if _match is None:
                    for other in matches:
                        joined.add(row + other)
                else:
                    for other in matches:
                        combined_row = row + other
                        if _match(combined_row):
                            joined.add(combined_row)
            return joined

        return join_kernel, combined

    def _resolve_index(self, plan: BoundedPlan, constraint: AccessConstraint) -> ConstraintIndex:
        """Map an actualized constraint back to the physical index of its base relation."""
        base = plan.occurrences.get(constraint.relation, constraint.relation)
        index = self.indexes.get(constraint)
        if index is not None:
            return index
        index = self.indexes.find(base, constraint.lhs, constraint.rhs)
        if index is None:
            raise PlanError(
                f"no index available for constraint {constraint} (base relation {base!r}); "
                "build an IndexSet for the access schema first"
            )
        return index


def _compile_predicates(
    predicates: Sequence[ColumnPredicate], columns: Sequence[str]
):
    positions = _column_positions(columns)
    compiled: list[tuple[int, str, object, int | None]] = []
    for predicate in predicates:
        try:
            left = positions[predicate.left]
            if isinstance(predicate.right, ColumnRef):
                compiled.append((left, predicate.op, None, positions[predicate.right.column]))
            else:
                compiled.append((left, predicate.op, predicate.right, None))
        except KeyError as missing:
            raise PlanError(
                f"predicate {predicate} references missing column {missing.args[0]!r}"
            ) from None

    def matches(row: Row) -> bool:
        for left_pos, op, constant, right_pos in compiled:
            right_value = row[right_pos] if right_pos is not None else constant
            if not _compare(row[left_pos], op, right_value):
                return False
        return True

    return matches


def execute_plan(
    plan: BoundedPlan,
    database: Database,
    indexes: IndexSet,
    counter: AccessCounter | None = None,
    *,
    mode: str = "row",
) -> ExecutionResult:
    """Convenience wrapper around :class:`PlanExecutor`."""
    return PlanExecutor(database, indexes, mode=mode).execute(plan, counter)
