"""The end-to-end bounded evaluation framework of Section 7 (Fig. 4).

:class:`BoundedEngine` wires together every component of the paper on top of
the in-memory substrate:

* **C1** — discover an access schema (optional) and build / maintain its
  constraint indexes ``I_A``;
* **C2** — check coverage of incoming queries (``CovChk``);
* **C3** — pick a minimal covering subset ``A_m`` (``minA`` and friends);
* **C4** — generate a canonical bounded plan (``QPlan``);
* **C5** — optionally translate the plan to SQL (``Plan2SQL``);
* **C6** — execute the plan, accessing only the bounded fraction ``D_Q``;
  queries that are not covered (and cannot be rewritten into a covered
  equivalent) fall back to conventional evaluation.

Caching architecture
--------------------

On top of the paper's pipeline the engine is a **versioned serving core**
built from three layers (see :mod:`repro.core.planstore`):

* **Plan store** — C2–C4 (plus the peephole optimization of
  :mod:`repro.core.optimizer`) depend only on the query syntax and the
  access schema, so their output is cached under the query's canonical
  fingerprint (:func:`repro.core.fingerprint.prepared_cache_key`).  The
  store is *shareable*: pass one :class:`~repro.core.planstore.PlanStore`
  to several engines (shards) serving the same access schema and each query
  is prepared once fleet-wide.  Entries are tagged with the base relations
  their plan fetches from, so a write invalidates only dependents.

* **Result cache** — covered results are bounded by the access schema
  (≤ ``access_bound()`` tuples), so the engine also keeps a per-engine
  :class:`~repro.core.planstore.ResultCache` keyed by ``(fingerprint,
  dependency version snapshot)``.  Repeated covered queries on unchanged
  data are served without executing at all; a write to a dependent relation
  changes the snapshot and the entry misses.

* **Version clock** — the database stamps every data-changing write with a
  monotonically increasing version per relation
  (:class:`~repro.storage.counters.VersionClock`).  The engine's
  maintenance path (:meth:`BoundedEngine.apply_insert` /
  :meth:`~BoundedEngine.apply_delete` / the batched
  :meth:`~BoundedEngine.apply_updates`) bumps the clock and settles both
  caches *granularly*: one batch costs one version bump plus one
  maintenance pass over the dependent entries.

* **Delta repair** — with ``delta_repair`` on (the default), a dependent
  write no longer drops result-cache entries wholesale: the
  :class:`~repro.core.deltas.DeltaDeriver` decides per entry whether the
  write's effect is derivable through the plan's fetch steps (a write
  touching constraint C can only add/remove rows reachable through C's
  fetch) and either re-stamps the entry (write missed every probed key),
  patches it by re-executing only the dirty fetches' downstream closure
  over the captured intermediates, or — when the delta is not derivable
  (difference over the touched relation, missing environment) — falls back
  to invalidating that entry.  Prepared plans are data-independent, so the
  plan store is left alone on the repair path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Iterable, Mapping, Sequence

from ..evaluator.baseline import evaluate_conventional
from ..evaluator.executor import ExecutionResult, PlanExecutor
from ..storage.counters import AccessCounter
from ..storage.database import Database
from ..storage.index import IndexSet
from .access import AccessSchema
from .coverage import CoverageResult, check_coverage
from .deltas import FALLBACK, PATCHED, DeltaDeriver, WriteDelta
from .errors import CircuitOpenError, MaintenanceError, NotCoveredError
from .fingerprint import prepared_cache_key
from .minimize import MinimizationResult, minimize_auto
from .optimizer import optimize_plan
from .plan import BoundedPlan
from .plan2sql import SQLTranslation, plan_to_sql
from .planner import generate_plan
from .planstore import PlanStore, ResultCache
from .query import Query
from .rewrite import find_covered_rewrite

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..discovery.maintenance import MaintenanceReport, Update

#: Backward-compatible alias: the LRU plan cache of PR 1, now the shareable
#: dependency-tagged store of :mod:`repro.core.planstore`.
PlanCache = PlanStore


@dataclass
class EngineResult:
    """The outcome of :meth:`BoundedEngine.execute`.

    ``strategy`` is ``"bounded"`` when a bounded plan was executed (possibly
    for a rewritten equivalent of the input query), and ``"conventional"``
    when the engine fell back to full evaluation.  ``cached`` reports whether
    the coverage/minimization/planning work was served from the plan store;
    ``result_cached`` reports whether even execution was skipped because the
    result cache held a version-valid materialized answer.
    """

    rows: frozenset[tuple]
    columns: tuple[str, ...]
    strategy: str
    elapsed: float
    counter: AccessCounter
    plan: BoundedPlan | None = None
    coverage: CoverageResult | None = None
    minimization: MinimizationResult | None = None
    rewrite: str = "identity"
    cached: bool = False
    result_cached: bool = False
    #: kernel family that executed the bounded plan ("row"/"columnar");
    #: ``None`` when nothing executed (result-cache hit) or on the fallback
    executor_mode: str | None = None

    def access_ratio(self, database_size: int) -> float:
        """``P(D_Q)`` for this execution."""
        return self.counter.ratio(database_size)


@dataclass
class PreparedQuery:
    """Everything C2–C4 produce for one query under one engine configuration.

    For covered (or rewritable) queries ``plan`` holds the canonical bounded
    plan and ``executable`` the optimized plan actually run; for uncovered
    queries both are ``None`` and only ``coverage`` is kept, so the fallback
    decision itself is also cached.  ``dependencies`` names the base
    relations the executable plan fetches from — the entry's invalidation
    footprint.
    """

    coverage: CoverageResult
    plan: BoundedPlan | None = None
    executable: BoundedPlan | None = None
    minimization: MinimizationResult | None = None
    rewrite: str = "identity"
    target: Query | None = None
    dependencies: tuple[str, ...] = ()

    @property
    def covered(self) -> bool:
        return self.plan is not None


def prepare_query(
    query: Query,
    access_schema: AccessSchema,
    *,
    minimize: bool = True,
    allow_rewrite: bool = True,
    optimize: bool = True,
) -> PreparedQuery:
    """The C2–C4 pipeline as a pure function of (query, access schema).

    Runs coverage checking, covered rewriting, access minimization, plan
    generation and peephole optimization — everything a
    :class:`PreparedQuery` holds.  Shared by :class:`BoundedEngine` and the
    federated :class:`~repro.sharding.router.ShardRouter`, which prepare
    against the same access schema but execute on different substrates; both
    cache the output in a :class:`~repro.core.planstore.PlanStore` under
    :func:`~repro.core.fingerprint.prepared_cache_key`.
    """
    target = query
    rewrite_name = "identity"
    coverage = check_coverage(query, access_schema)
    if not coverage.is_covered and allow_rewrite:
        verdict = find_covered_rewrite(query, access_schema)
        if verdict.bounded and verdict.witness is not None:
            target = verdict.witness
            rewrite_name = verdict.rewrite
            coverage = check_coverage(target, access_schema)

    if not coverage.is_covered:
        return PreparedQuery(coverage=coverage)

    minimization: MinimizationResult | None = None
    effective_coverage = coverage
    if minimize:
        minimization = minimize_auto(target, access_schema)
        effective_coverage = check_coverage(target, minimization.selected)
    plan = generate_plan(effective_coverage)
    executable = optimize_plan(plan) if optimize else plan
    return PreparedQuery(
        coverage=effective_coverage,
        plan=plan,
        executable=executable,
        minimization=minimization,
        rewrite=rewrite_name,
        target=target,
        dependencies=executable.dependency_relations(),
    )


class BoundedEngine:
    """Bounded evaluation of RA queries over an in-memory database.

    ``plan_store`` lets several engines share one prepared-plan store; they
    must be configured with an identical access schema (plans embed its
    constraints).  When omitted, the engine creates a private store of
    ``plan_cache_size`` entries.  ``result_cache_size`` bounds the per-engine
    result cache (0 disables result caching).  ``granular_invalidation``
    selects the constraint-granular write path; turning it off restores the
    clear-all behaviour of PR 1 (kept for benchmarking the difference).

    ``delta_repair`` (default on) makes dependent writes *repair* result-
    cache entries instead of invalidating them: covered executions capture
    their per-step row environment (within the ``repair_env_rows`` budget,
    summed over all steps of one entry) and the write path derives row-level
    patches through :class:`~repro.core.deltas.DeltaDeriver`, falling back
    to per-entry invalidation whenever a delta is not derivable.  On this
    path the plan store is **not** swept — prepared plans depend only on
    (query, access schema), and keeping them is what makes a repaired read
    hit without re-planning.  Turning ``delta_repair`` off restores the
    sweep-on-write contract (every dependent plan-store and result-cache
    entry is dropped).  Requires ``granular_invalidation``; with clear-all
    invalidation the knob is ignored.

    **Snapshot contract** of the serving surface: :meth:`execute` reads the
    dependency snapshot *before* probing the result cache and stamps filled
    entries with that same snapshot; the write path
    (:meth:`apply_insert` / :meth:`apply_delete` / :meth:`apply_updates`)
    verifies an entry still carries the pre-write snapshot before repairing
    it and re-stamps it with the post-write snapshot.  Any entry observed
    mid-flight with a different snapshot is dropped, never patched.  The
    engine itself is single-threaded per write (the serving tier serializes
    writes); concurrent *readers* are safe because they only compare
    snapshots.

    ``executor_mode`` selects the plan-execution kernels: ``"row"``,
    ``"columnar"``, or the default ``"auto"``, which lets the optimizer's
    cost model (:func:`repro.core.optimizer.choose_executor_mode`) pick per
    plan — row kernels for point lookups, the vectorized columnar kernels of
    :mod:`repro.evaluator.columnar` for wide joins and large bounded
    fetches.  The chosen mode is surfaced on every executed
    :class:`EngineResult` and aggregated in :meth:`cache_stats`.

    ``fallback_breaker`` (optional, duck-typed: ``allow()`` /
    ``record_success()`` / ``record_failure()``, e.g. a
    :class:`~repro.serving.policy.CircuitBreaker`) guards the *unbounded*
    conventional fallback: unlike bounded plans, whose cost is capped by
    ``access_bound()``, a fallback execution can touch the whole database —
    so under load a stampede of uncovered queries could starve the covered
    hot path.  When the breaker refuses, :meth:`execute` raises
    :class:`~repro.core.errors.CircuitOpenError` instead of evaluating; every
    fallback outcome is reported back to the breaker.
    """

    def __init__(
        self,
        database: Database,
        access_schema: AccessSchema,
        *,
        build_indexes: bool = True,
        check_constraints: bool = True,
        plan_cache_size: int = 128,
        plan_store: PlanStore | None = None,
        result_cache_size: int = 256,
        optimize: bool = True,
        granular_invalidation: bool = True,
        delta_repair: bool = True,
        repair_env_rows: int = 200_000,
        fallback_breaker: object | None = None,
        executor_mode: str = "auto",
    ):
        self.database = database
        self.access_schema = access_schema
        self.index_build_seconds = 0.0
        if build_indexes:
            started = time.perf_counter()
            self.indexes = IndexSet.build(
                database, access_schema, check=check_constraints
            )
            self.index_build_seconds = time.perf_counter() - started
        else:
            self.indexes = IndexSet()
        self._executor = PlanExecutor(database, self.indexes, mode=executor_mode)
        self.plan_cache = plan_store if plan_store is not None else PlanStore(plan_cache_size)
        self.result_cache = ResultCache(result_cache_size, max_env_rows=repair_env_rows)
        self.optimize = optimize
        self.granular_invalidation = granular_invalidation
        self.delta_repair = delta_repair and granular_invalidation
        #: repairs always run row kernels (captured environments are row
        #: sets), regardless of the serving executor's mode.
        self._repair_executor = PlanExecutor(database, self.indexes, mode="row")
        self._deriver = DeltaDeriver(
            self._repair_executor, database.schema, group_lookup=self._index_group
        )
        self.fallback_breaker = fallback_breaker
        #: the conventional-evaluation seam: the serving tier's fault
        #: injector (and tests) wrap this attribute rather than the module
        #: function, so faults hit only this engine instance.
        self._fallback_evaluator = evaluate_conventional

    @property
    def clock(self):
        """The database's :class:`~repro.storage.counters.VersionClock`.

        The serving tier validates lock-free reads against this clock; the
        property is the seam that lets a :class:`~repro.sharding.router.
        ShardRouter` (which has no single database, only a router-level
        clock) stand in for an engine behind the same interface.
        """
        return self.database.clock

    # -- C2: coverage -----------------------------------------------------------
    def check(self, query: Query) -> CoverageResult:
        """Run ``CovChk`` on ``query`` against the engine's access schema."""
        return check_coverage(query, self.access_schema)

    def is_covered(self, query: Query) -> bool:
        """Shorthand: whether ``CovChk`` passes for ``query``."""
        return self.check(query).is_covered

    # -- C3 + C4: minimization and planning -----------------------------------------
    def plan(
        self, query: Query, *, minimize: bool = True
    ) -> tuple[BoundedPlan, CoverageResult, MinimizationResult | None]:
        """Generate a bounded plan for a covered query.

        When ``minimize`` is true, the plan is generated against the minimized
        subset ``A_m`` returned by the access-minimization heuristics.
        Raises :class:`NotCoveredError` if the query is not covered.
        """
        coverage = self.check(query)
        if not coverage.is_covered:
            raise NotCoveredError(coverage.explain())
        minimization: MinimizationResult | None = None
        if minimize:
            minimization = minimize_auto(query, self.access_schema)
            coverage = check_coverage(query, minimization.selected)
        plan = generate_plan(coverage)
        return plan, coverage, minimization

    # -- C5: SQL translation ----------------------------------------------------------
    def to_sql(self, query: Query, *, minimize: bool = True) -> SQLTranslation:
        """The ``Plan2SQL`` translation of the bounded plan for ``query``."""
        plan, _, _ = self.plan(query, minimize=minimize)
        return plan_to_sql(plan)

    # -- query preparation (C2-C4, cached) --------------------------------------------
    def _cache_key(self, query: Query, minimize: bool, allow_rewrite: bool) -> Hashable:
        return prepared_cache_key(
            query,
            minimize=minimize,
            allow_rewrite=allow_rewrite,
            optimize=self.optimize,
        )

    def _prepare(self, query: Query, *, minimize: bool, allow_rewrite: bool) -> PreparedQuery:
        """Run coverage, rewriting, minimization, planning and optimization."""
        return prepare_query(
            query,
            self.access_schema,
            minimize=minimize,
            allow_rewrite=allow_rewrite,
            optimize=self.optimize,
        )

    def prepare(
        self, query: Query, *, minimize: bool = True, allow_rewrite: bool = True
    ) -> tuple[PreparedQuery, bool]:
        """The cached C2-C4 pipeline; returns ``(prepared, was_cache_hit)``."""
        _, entry, hit = self._prepare_keyed(query, minimize, allow_rewrite)
        return entry, hit

    def _prepare_keyed(
        self, query: Query, minimize: bool, allow_rewrite: bool
    ) -> tuple[Hashable, PreparedQuery, bool]:
        """:meth:`prepare` plus the cache key, fingerprinted exactly once.

        The same key addresses the plan store and the result cache, and
        fingerprinting is most of the remaining work on a result-cache hit —
        so the hot path must not compute it twice.
        """
        key = self._cache_key(query, minimize, allow_rewrite)
        entry = self.plan_cache.get(key)
        if entry is not None:
            return key, entry, True
        entry = self._prepare(query, minimize=minimize, allow_rewrite=allow_rewrite)
        evicted = self.plan_cache.put(key, entry, dependencies=entry.dependencies)
        self._discard_compiled(evicted)
        return key, entry, False

    # -- C6: execution -------------------------------------------------------------------
    def execute(
        self,
        query: Query,
        *,
        minimize: bool = True,
        allow_rewrite: bool = True,
        fallback: bool = True,
    ) -> EngineResult:
        """Answer ``query``: bounded plan when possible, otherwise fall back.

        With ``allow_rewrite`` the engine also tries the A-equivalent rewrites
        of :mod:`repro.core.rewrite` (difference guarding, branch pruning)
        before giving up on bounded evaluation.  Repeated queries hit the plan
        store and skip coverage checking, minimization and planning entirely;
        repeated covered queries over unchanged dependent relations are
        served straight from the result cache without executing.
        """
        key, prepared, cached = self._prepare_keyed(query, minimize, allow_rewrite)

        if prepared.covered:
            snapshot = self.database.clock.snapshot(prepared.dependencies)
            hit = self.result_cache.get(key, snapshot)
            if hit is not None:
                return EngineResult(
                    rows=hit.rows,
                    columns=hit.columns,
                    strategy="bounded",
                    elapsed=0.0,
                    counter=AccessCounter(),
                    plan=prepared.plan,
                    coverage=prepared.coverage,
                    minimization=prepared.minimization,
                    rewrite=prepared.rewrite,
                    cached=cached,
                    result_cached=True,
                )
            execution: ExecutionResult = self._executor.execute(
                prepared.executable,
                capture_env=self.delta_repair and self.result_cache.capacity > 0,
                env_rows_budget=self.result_cache.max_env_rows,
            )
            self.result_cache.put(
                key,
                rows=execution.rows,
                columns=execution.columns,
                dependencies=prepared.dependencies,
                snapshot=snapshot,
                env=execution.env,
                plan=prepared.executable,
            )
            return EngineResult(
                rows=execution.rows,
                columns=execution.columns,
                strategy="bounded",
                elapsed=execution.elapsed,
                counter=execution.counter,
                plan=prepared.plan,
                coverage=prepared.coverage,
                minimization=prepared.minimization,
                rewrite=prepared.rewrite,
                cached=cached,
                executor_mode=execution.executor_mode,
            )

        if not fallback:
            raise NotCoveredError(prepared.coverage.explain())

        breaker = self.fallback_breaker
        if breaker is not None and not breaker.allow():
            raise CircuitOpenError(
                "conventional fallback refused: circuit breaker is open "
                "(recent fallback failures); retry after the cooldown or "
                "rewrite the query into a covered form"
            )
        try:
            baseline = self._fallback_evaluator(
                query, self.database, self.access_schema, self.indexes
            )
        except Exception:
            if breaker is not None:
                breaker.record_failure()
            raise
        if breaker is not None:
            breaker.record_success()
        return EngineResult(
            rows=baseline.rows,
            columns=baseline.result.columns,
            strategy="conventional",
            elapsed=baseline.elapsed,
            counter=baseline.counter,
            coverage=prepared.coverage,
            cached=cached,
        )

    # -- C1: maintenance -------------------------------------------------------------------
    def _after_write(
        self, relations: Iterable[str], delta: WriteDelta | None = None
    ) -> None:
        """Bump the version clock and settle the caches after a data change.

        Three regimes, in decreasing bluntness:

        * ``granular_invalidation`` off — both caches are cleared wholesale
          (the PR 1 behaviour, kept for comparison benchmarks);
        * granular, no usable ``delta`` — only entries whose plans fetch
          from the written relations are dropped; compiled kernels of
          dropped plan-store entries are released from the executor;
        * granular + ``delta_repair`` + a ``delta`` — result-cache entries
          are **repaired** (re-stamped or patched via
          :class:`~repro.core.deltas.DeltaDeriver`) with per-entry fallback
          to invalidation, and the plan store is left untouched (prepared
          plans are data-independent).

        The repair pass snapshots every candidate entry's dependencies
        *before* bumping the clock: an entry whose stamp does not match
        those pre-write versions was already stale and is dropped rather
        than patched — the snapshot-validation contract that makes a
        repaired entry indistinguishable from a fresh recomputation.
        """
        touched = tuple(relations)
        clock = self.database.clock
        if not self.granular_invalidation:
            clock.bump(touched)
            self._discard_compiled(self.plan_cache.invalidate(None))
            self.result_cache.invalidate(None)
            return
        if not (self.delta_repair and delta is not None and delta):
            clock.bump(touched)
            self._discard_compiled(self.plan_cache.invalidate(touched))
            self.result_cache.invalidate(touched)
            return
        candidates = [
            (key, entry, clock.snapshot(entry.dependencies))
            for key, entry in self.result_cache.entries_for(touched)
        ]
        clock.bump(touched)
        touched_set = frozenset(touched)
        for key, entry, pre_snapshot in candidates:
            scope = sorted(touched_set.intersection(entry.dependencies))
            if entry.snapshot != pre_snapshot:
                self.result_cache.drop(key, reason="stale", relations=scope)
                continue
            if entry.env is None or entry.plan is None:
                self.result_cache.drop(key, reason="no_env", relations=scope)
                continue
            outcome = self._deriver.derive(entry.plan, entry.env, entry.rows, delta)
            if outcome.status == FALLBACK:
                self.result_cache.drop(key, reason=outcome.reason, relations=scope)
                continue
            patched = outcome.status == PATCHED
            self.result_cache.repair(
                key,
                rows=outcome.rows if patched else entry.rows,
                env=outcome.env if patched else entry.env,
                snapshot=clock.snapshot(entry.dependencies),
                rows_added=outcome.rows_added,
                rows_removed=outcome.rows_removed,
            )

    def _index_group(self, constraint, base: str, key: tuple) -> frozenset[tuple] | None:
        """The live (post-write) index group of ``key`` for dirty refinement.

        Resolves actualized constraints back to the physical index of their
        base relation, exactly like the executor; ``None`` (no index) makes
        the deriver treat the key as dirty, never as clean.
        """
        index = self.indexes.get(constraint)
        if index is None:
            index = self.indexes.find(base, constraint.lhs, constraint.rhs)
        if index is None:
            return None
        return frozenset(index.lookup(key))

    def _discard_compiled(self, entries: Iterable[object]) -> None:
        """Release the executors' compiled kernels of dropped store entries."""
        for entry in entries:
            executable = getattr(entry, "executable", None)
            if executable is not None:
                self._executor.discard(executable)
                self._repair_executor.discard(executable)

    def apply_insert(self, relation: str, row: Sequence | Mapping[str, object]) -> None:
        """Insert a tuple and incrementally maintain the indexes (Proposition 12).

        The row is validated (arity, unknown attributes) *before* anything is
        mutated: a malformed row raises a typed
        :class:`~repro.core.errors.ReproError` while storage, the constraint
        indexes, and the version clock are all still untouched — so a bad row
        can never leave the relation and its ``IndexSet`` diverged.
        """
        instance = self.database.relation(relation)
        prepared = instance.prepare(row)
        if instance.insert(prepared):
            self.indexes.apply_insert(relation, prepared)
            self._after_write(
                (relation,), WriteDelta(inserts={relation: (prepared,)})
            )

    def apply_delete(self, relation: str, row: Sequence | Mapping[str, object]) -> None:
        """Delete a tuple and incrementally maintain the indexes (Proposition 12).

        Validates the row before mutating, exactly as :meth:`apply_insert`.
        """
        instance = self.database.relation(relation)
        prepared = instance.prepare(row)
        if instance.delete(prepared):
            self.indexes.apply_delete(relation, prepared, instance)
            self._after_write(
                (relation,), WriteDelta(deletes={relation: (prepared,)})
            )

    def apply_updates(self, updates: Iterable["Update"]) -> "MaintenanceReport":
        """Apply a batch of updates with one version bump and one cache sweep.

        Routes :class:`repro.discovery.maintenance.Update` batches through
        the incremental maintenance of Proposition 12 against this engine's
        database and indexes, then settles the serving state once for the
        whole batch: a single version tick stamping every touched relation
        and a single targeted invalidation sweep — instead of the per-row
        clear-alls a loop over :meth:`apply_insert` would cost.

        With ``delta_repair`` the settlement is one **derivation pass**: the
        report's applied updates become a single
        :class:`~repro.core.deltas.WriteDelta` and every dependent
        result-cache entry is repaired or invalidated per-entry (the plan
        store is untouched).

        If the batch aborts part-way (a
        :class:`~repro.core.errors.MaintenanceError` carrying the partial
        report), the clock bump and cache settlement are **still** performed
        over the relations the partial batch did mutate before the error
        propagates; otherwise the result cache would keep serving rows from
        before the aborted batch (the stale-serve bug this guards against).
        Failed batches never take the repair path — a fault mid-batch means
        storage state is suspect, so dependent entries are invalidated
        outright rather than patched.
        """
        from ..discovery.maintenance import apply_updates as _apply_updates

        try:
            report = _apply_updates(
                self.database, self.indexes, self.access_schema, updates, bump_clock=False
            )
        except MaintenanceError as error:
            partial = error.report
            if partial is not None and partial.touched_relations:
                # Conservative: no repair after a fault — sweep dependents.
                self._after_write(sorted(partial.touched_relations))
                partial.version = self.database.version
            raise
        if report.touched_relations:
            self._after_write(
                sorted(report.touched_relations),
                WriteDelta.from_updates(report.applied_updates),
            )
            report.version = self.database.version
        return report

    # -- reporting ----------------------------------------------------------------------------
    def index_footprint(self) -> dict[str, object]:
        """Size statistics of the materialized indexes (Exp-1(IV))."""
        database_size = self.database.size
        total = self.indexes.total_size
        return {
            "database_tuples": database_size,
            "index_tuples": total,
            "index_fraction": (total / database_size) if database_size else 0.0,
            "build_seconds": self.index_build_seconds,
            "constraints": len(self.access_schema),
        }

    def cache_stats(self) -> dict[str, dict[str, int | float]]:
        """Plan-store, result-cache and executor statistics, reported separately.

        The ``executor`` section audits the row-vs-columnar choices: how many
        executions each kernel family served, how ``auto`` resolved at
        compile time, and the cumulative kernel-batch / rows-processed
        volume.
        """
        return {
            "plan_store": self.plan_cache.stats(),
            "result_cache": self.result_cache.stats(),
            "executor": self._executor.stats(),
        }
