"""Selecting access constraints to cover a *workload* of queries.

Section 9 of the paper lists, as future work, "algorithms for discovering a
(minimum) set of access constraints to cover a workload", with the approach
of Section 7 as a starting point.  This module implements that extension:

given a workload ``Q1 … Qk`` and a pool of candidate constraints (either
hand-curated or mined with :mod:`repro.discovery.mining`), greedily select a
subset that covers as many queries as possible at low estimated access cost
(``Σ N``), then prune redundant constraints.  The selection problem inherits
the hardness of AMP (it generalizes it), so a heuristic with a pruning pass
is the appropriate tool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..core.access import AccessConstraint, AccessSchema
from ..core.coverage import CoverageChecker
from ..core.query import Query


@dataclass
class WorkloadCoverResult:
    """The outcome of :func:`cover_workload`."""

    selected: AccessSchema
    covered_queries: tuple[int, ...]
    uncovered_queries: tuple[int, ...]
    cost: int
    iterations: int = 0
    #: per selected constraint, how many queries' coverage it participated in
    usefulness: Mapping[AccessConstraint, int] = field(default_factory=dict)

    @property
    def coverage_ratio(self) -> float:
        total = len(self.covered_queries) + len(self.uncovered_queries)
        return len(self.covered_queries) / total if total else 0.0


def _coverage_progress(checker: CoverageChecker, schema: AccessSchema) -> tuple[bool, int]:
    """(is covered, number of covered attribute tokens) — the greedy's gain signal."""
    result = checker.check(schema)
    tokens = sum(len(sub.covered_tokens) for sub in result.subqueries)
    indexed = sum(
        len(sub.index_choices) for sub in result.subqueries
    )
    return result.is_covered, tokens + indexed


def cover_workload(
    queries: Sequence[Query],
    candidates: AccessSchema | Iterable[AccessConstraint],
    *,
    max_constraints: int | None = None,
    cost_weight: float = 0.0,
) -> WorkloadCoverResult:
    """Greedily pick constraints from ``candidates`` to cover the workload.

    Each round adds the constraint with the best gain, where gain is the
    number of newly covered queries, tie-broken by chase progress (newly
    covered attributes / newly indexed relations) and penalized by
    ``cost_weight · N``.  After no further query can be covered, a pruning
    pass removes constraints whose removal keeps every covered query covered
    (so the result is *minimal* for the queries it covers).
    """
    if isinstance(candidates, AccessSchema):
        pool = list(candidates)
        base_schema = candidates.schema
    else:
        pool = list(candidates)
        base_schema = None

    checkers = [CoverageChecker(query) for query in queries]
    full_schema = AccessSchema(pool, schema=base_schema)
    coverable = [
        index for index, checker in enumerate(checkers) if checker.is_covered(full_schema)
    ]

    selected: list[AccessConstraint] = []
    iterations = 0

    def covered_with(subset: list[AccessConstraint]) -> set[int]:
        schema = AccessSchema(subset, schema=base_schema)
        return {index for index in coverable if checkers[index].is_covered(schema)}

    currently_covered: set[int] = covered_with(selected)
    while True:
        iterations += 1
        if max_constraints is not None and len(selected) >= max_constraints:
            break
        remaining = [c for c in pool if c not in selected]
        if not remaining:
            break
        best: AccessConstraint | None = None
        best_key: tuple[float, float] | None = None
        for constraint in remaining:
            candidate_subset = selected + [constraint]
            schema = AccessSchema(candidate_subset, schema=base_schema)
            newly_covered = 0
            progress = 0
            for index in coverable:
                if index in currently_covered:
                    continue
                is_covered, tokens = _coverage_progress(checkers[index], schema)
                if is_covered:
                    newly_covered += 1
                progress += tokens
            key = (
                newly_covered - cost_weight * constraint.bound,
                progress - cost_weight * constraint.bound,
            )
            if best_key is None or key > best_key:
                best_key = key
                best = constraint
        if best is None:
            break
        # Stop when nothing improves coverage or chase progress any more.
        previous_progress = sum(
            _coverage_progress(checkers[index], AccessSchema(selected, schema=base_schema))[1]
            for index in coverable
            if index not in currently_covered
        )
        selected.append(best)
        new_covered = covered_with(selected)
        new_progress = sum(
            _coverage_progress(checkers[index], AccessSchema(selected, schema=base_schema))[1]
            for index in coverable
            if index not in new_covered
        )
        made_progress = (
            len(new_covered) > len(currently_covered) or new_progress > previous_progress
        )
        currently_covered = new_covered
        if len(currently_covered) == len(coverable):
            break
        if not made_progress:
            selected.pop()
            break

    # Pruning pass: drop constraints not needed by any covered query.
    changed = True
    while changed:
        changed = False
        for constraint in list(selected):
            reduced = [c for c in selected if c != constraint]
            if covered_with(reduced) >= currently_covered:
                selected = reduced
                changed = True

    final_schema = AccessSchema(selected, schema=base_schema)
    usefulness: dict[AccessConstraint, int] = {}
    for constraint in selected:
        reduced = AccessSchema([c for c in selected if c != constraint], schema=base_schema)
        usefulness[constraint] = sum(
            1
            for index in currently_covered
            if not checkers[index].is_covered(reduced)
        )
    uncovered = tuple(
        index for index in range(len(queries)) if index not in currently_covered
    )
    return WorkloadCoverResult(
        selected=final_schema,
        covered_queries=tuple(sorted(currently_covered)),
        uncovered_queries=uncovered,
        cost=sum(c.bound for c in selected),
        iterations=iterations,
        usefulness=usefulness,
    )


def cover_workload_from_data(
    queries: Sequence[Query],
    database,
    *,
    discovery_config=None,
    **kwargs,
) -> WorkloadCoverResult:
    """Mine candidate constraints from ``database`` and cover the workload with them."""
    from .mining import discover_access_schema

    candidates = discover_access_schema(database, discovery_config)
    return cover_workload(queries, candidates, **kwargs)
