"""The in-memory storage substrate: relations, databases, and constraint indexes."""

from .counters import AccessCounter
from .database import Database
from .index import ConstraintIndex, IndexSet
from .relation import RelationInstance
from .statistics import DatabaseStatistics, RelationStatistics

__all__ = [
    "AccessCounter",
    "ConstraintIndex",
    "Database",
    "DatabaseStatistics",
    "IndexSet",
    "RelationInstance",
    "RelationStatistics",
]
