"""The #-unidiff observation of Section 8 Exp-1(2).

Bounded plans fetch data per max SPC sub-query, so their cost is essentially
insensitive to the number of union/difference operators combining those
sub-queries.  The series reports evalQP time and P(D_Q) for #-unidiff 0..5
(the paper omits the baseline here because it never finished).
"""

from repro.bench.experiments import unidiff_experiment


def test_unidiff_insensitivity(benchmark, workload, bench_scale):
    table = benchmark.pedantic(
        unidiff_experiment,
        kwargs={
            "workload": workload,
            "values": (0, 1, 2, 3, 4, 5),
            "seed": 19,
            "scale": bench_scale // 2,
            "queries_per_value": 3,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(table.render())

    populated = [row for row in table.rows if row["queries"]]
    assert populated
    times = [row["evalQP_s"] for row in populated]
    # evalQP stays within a small constant factor across #-unidiff values
    # (per-sub-query fetching; no blow-up with the number of set operators).
    assert max(times) <= max(10 * min(times), min(times) + 0.25)
