"""Unit tests for the serving-tier policies: backoff, budget, breaker, deadline."""

import random

import pytest

from repro.serving.policy import (
    Backoff,
    CircuitBreaker,
    Deadline,
    RetryBudget,
    RetryPolicy,
)


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestBackoff:
    def test_delays_stay_within_base_and_cap(self):
        backoff = Backoff(base=0.01, cap=0.5, rng=random.Random(1))
        delays = [backoff.next_delay() for _ in range(200)]
        assert all(0.01 <= d <= 0.5 for d in delays)

    def test_deterministic_given_seed(self):
        a = Backoff(0.01, 0.5, random.Random(42))
        b = Backoff(0.01, 0.5, random.Random(42))
        assert [a.next_delay() for _ in range(10)] == [b.next_delay() for _ in range(10)]

    def test_decorrelated_range_depends_on_previous_draw(self):
        # The next delay is drawn from U(base, 3 * previous): with a previous
        # draw pinned at the cap, delays may exceed 3 * base.
        backoff = Backoff(0.1, 10.0, random.Random(0))
        seen_above_3x_base = False
        for _ in range(100):
            if backoff.next_delay() > 0.3:
                seen_above_3x_base = True
        assert seen_above_3x_base

    def test_reset_restores_base_range(self):
        backoff = Backoff(0.01, 100.0, random.Random(3))
        for _ in range(20):
            backoff.next_delay()
        backoff.reset()
        assert backoff.next_delay() <= 0.03  # first post-reset draw is U(base, 3*base)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Backoff(0.0, 1.0, random.Random(0))
        with pytest.raises(ValueError):
            Backoff(0.5, 0.1, random.Random(0))


class TestRetryBudget:
    def test_spend_draws_down_initial_tokens(self):
        budget = RetryBudget(ratio=0.1, initial=2.0, cap=10.0)
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()
        assert budget.spent == 2
        assert budget.denied == 1

    def test_attempts_accrue_budget_at_ratio(self):
        budget = RetryBudget(ratio=0.5, initial=0.0, cap=10.0)
        assert not budget.try_spend()
        budget.record_attempt()
        assert not budget.try_spend()  # 0.5 < 1 full token
        budget.record_attempt()
        assert budget.try_spend()

    def test_tokens_capped(self):
        budget = RetryBudget(ratio=1.0, initial=0.0, cap=3.0)
        for _ in range(100):
            budget.record_attempt()
        assert budget.tokens == 3.0

    def test_policy_factories(self):
        policy = RetryPolicy(base_delay=0.002, max_delay=0.02, budget_ratio=0.3)
        backoff = policy.backoff(random.Random(0))
        assert backoff.base == 0.002 and backoff.cap == 0.02
        assert policy.budget().ratio == 0.3


class TestCircuitBreaker:
    def test_closed_allows_and_failures_below_threshold_stay_closed(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=1.0, clock=FakeClock())
        assert breaker.allow()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=1.0, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_trips_open_and_rejects_until_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, cooldown=5.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.times_opened == 1
        assert not breaker.allow()
        clock.advance(4.9)
        assert not breaker.allow()
        assert breaker.rejected == 2

    def test_half_open_admits_single_probe_then_closes_on_success(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()  # the probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow()  # second caller refused while probe in flight
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens_and_restarts_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.times_opened == 2
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()

    def test_stats_snapshot(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1.0, clock=FakeClock())
        breaker.record_failure()
        breaker.allow()
        stats = breaker.stats()
        assert stats["state"] == CircuitBreaker.OPEN
        assert stats["times_opened"] == 1
        assert stats["rejected"] == 1
        assert stats["failures"] == 1

    def test_rejects_zero_threshold(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


class TestDeadline:
    def test_remaining_counts_down_and_never_negative(self):
        clock = FakeClock()
        deadline = Deadline.after(2.0, clock)
        assert deadline.remaining() == 2.0
        assert not deadline.expired
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        clock.advance(10.0)
        assert deadline.remaining() == 0.0
        assert deadline.expired

    def test_expired_exactly_at_boundary(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock)
        clock.advance(1.0)
        assert deadline.expired
