"""Unit tests for algorithm QPlan (canonical bounded plan generation, Section 5)."""

import pytest

from repro.core.access import AccessConstraint, AccessSchema
from repro.core.coverage import check_coverage
from repro.core.errors import NotCoveredError
from repro.core.plan import FetchOp
from repro.core.planner import generate_plan, plan_query
from repro.core.query import Relation, conjunction, eq
from repro.evaluator.algebra import evaluate
from repro.evaluator.executor import execute_plan
from repro.storage.index import IndexSet
from repro.workloads import facebook


class TestPlanGeneration:
    def test_not_covered_raises(self, fb_q0, fb_access):
        coverage = check_coverage(fb_q0, fb_access)
        with pytest.raises(NotCoveredError):
            generate_plan(coverage)

    def test_q1_plan_structure(self, fb_q1, fb_access):
        plan = plan_query(fb_q1, fb_access)
        plan.validate()
        # fetches use only constraints of the (actualized) access schema
        used = {c.name for c in plan.constraints_used()}
        assert used <= {"psi1", "psi2", "psi3", "psi4"}
        # ψ1, ψ2, ψ4 are all needed to fetch Q1's attributes
        assert {"psi1", "psi2", "psi4"} <= used
        # every relation occurrence has a surrogate
        assert set(plan.surrogates) == {"friend", "dine", "cafe"}

    def test_q0_prime_plan_length_reasonable(self, fb_q0_prime, fb_access):
        """Lemma 8: the plan length is O(|Q||A|)."""
        plan = plan_query(fb_q0_prime, fb_access)
        assert plan.length <= fb_q0_prime.size * (fb_access.size + 5)

    def test_access_bound_independent_of_data(self, fb_q0_prime, fb_access):
        """The bound is in the ballpark of Example 1's 470 000 and data-free."""
        plan = plan_query(fb_q0_prime, fb_access)
        bound = plan.access_bound()
        assert bound > 0
        # 5000 (friends) enters, as does the 31-per-month factor
        assert bound >= 5000 * 31
        assert bound <= 50 * 470_000

    def test_unit_fetch_plans_shared_across_attributes(self, fb_q1, fb_access):
        """Attributes unified by Σ_Q share one unit fetching plan (memoization)."""
        plan = plan_query(fb_q1, fb_access)
        # friend.fid and dine.pid are equated, so there is a single entry for them
        tokens = set(plan.fetch_plans)
        assert len([t for t in tokens if t.endswith(".fid") or t.endswith(".pid")]) <= 3

    def test_plan_correct_on_data(self, fb_q1, fb_access, fb_database, fb_indexes):
        plan = plan_query(fb_q1, fb_access)
        execution = execute_plan(plan, fb_database, fb_indexes)
        reference = evaluate(fb_q1, fb_database)
        assert execution.rows == reference.rows

    def test_q0_prime_plan_correct_on_data(self, fb_q0_prime, fb_q0, fb_access, fb_database, fb_indexes):
        plan = plan_query(fb_q0_prime, fb_access)
        execution = execute_plan(plan, fb_database, fb_indexes)
        assert execution.rows == evaluate(fb_q0_prime, fb_database).rows
        # and Q0' is equivalent to the original Q0 (Example 1)
        assert execution.rows == evaluate(fb_q0, fb_database).rows

    def test_selection_only_query(self, fb_schema, fb_access, fb_database, fb_indexes):
        cafe = Relation.from_schema(fb_schema, "cafe")
        query = cafe.select(eq(cafe["cid"], "c1")).project([cafe["city"]])
        plan = plan_query(query, fb_access)
        execution = execute_plan(plan, fb_database, fb_indexes)
        assert execution.rows == evaluate(query, fb_database).rows

    def test_union_query_plan(self, fb_schema, fb_access, fb_database, fb_indexes):
        cafe_a = Relation("cafe_a", fb_schema["cafe"].attributes, base="cafe")
        cafe_b = Relation("cafe_b", fb_schema["cafe"].attributes, base="cafe")
        query = (
            cafe_a.select(eq(cafe_a["cid"], "c1")).project([cafe_a["city"]])
        ).union(cafe_b.select(eq(cafe_b["cid"], "c2")).project([cafe_b["city"]]))
        plan = plan_query(query, fb_access)
        execution = execute_plan(plan, fb_database, fb_indexes)
        assert execution.rows == evaluate(query, fb_database).rows

    def test_empty_lhs_constraint_plan(self, fb_schema, fb_database):
        """A query needing an attribute covered only by an ∅ -> X constraint."""
        access = AccessSchema(
            [
                AccessConstraint.of("dine", (), "month", 12, name="months"),
                AccessConstraint.of("dine", ["pid", "year", "month"], "cid", 31, name="psi2"),
                AccessConstraint.of("dine", ["pid", "cid"], ["pid", "cid"], 1, name="psi3"),
            ],
            schema=fb_schema,
        )
        dine = Relation.from_schema(fb_schema, "dine")
        query = dine.select(
            conjunction([eq(dine["pid"], "p1"), eq(dine["year"], 2015)])
        ).project([dine["cid"], dine["month"]])
        plan = plan_query(query, access)
        indexes = IndexSet.build(fb_database, access)
        execution = execute_plan(plan, fb_database, indexes)
        assert execution.rows == evaluate(query, fb_database).rows

    def test_plan_fetches_only_via_indexes(self, fb_q0_prime, fb_access):
        plan = plan_query(fb_q0_prime, fb_access)
        for step in plan.steps:
            if isinstance(step.op, FetchOp):
                assert step.op.constraint in plan.access_schema

    def test_minimized_schema_still_plans(self, fb_q1, fb_access):
        """QPlan works against the subset returned by access minimization."""
        from repro.core.minimize import minimize_access

        subset = minimize_access(fb_q1, fb_access).selected
        plan = plan_query(fb_q1, subset)
        assert {c.name for c in plan.constraints_used()} <= {c.name for c in subset}
