"""Regenerate the paper's experimental tables/figures at a configurable scale.

Runs every experiment driver of :mod:`repro.bench.experiments` — the same code
the pytest-benchmark suite uses — and prints the resulting series.  This is
how the numbers in EXPERIMENTS.md were produced.

Run with:  python examples/experiment_report.py [--scale N] [--queries N] [--quick]
"""

from __future__ import annotations

import argparse

from repro.bench import (
    constraints_experiment,
    coverage_experiment,
    efficiency_experiment,
    index_size_experiment,
    join_experiment,
    maintenance_experiment,
    mina_effect_experiment,
    scale_experiment,
    selection_experiment,
    unidiff_experiment,
)
from repro.workloads import WORKLOADS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=250,
                        help="base workload scale (entities) for the |D|-dependent experiments")
    parser.add_argument("--queries", type=int, default=60,
                        help="number of random queries for the coverage experiment (Figure 6)")
    parser.add_argument("--quick", action="store_true",
                        help="run a reduced set of points (for smoke-testing the harness)")
    parser.add_argument("--workloads", nargs="*", default=sorted(WORKLOADS),
                        choices=sorted(WORKLOADS), help="which workloads to run")
    args = parser.parse_args()

    scale_factors = (0.125, 0.5, 1.0) if args.quick else (2**-5, 2**-4, 2**-3, 2**-2, 2**-1, 1.0)
    fractions = (0.5, 1.0) if args.quick else (0.25, 0.5, 0.75, 1.0)
    sweep_values = (4, 6, 9) if args.quick else (4, 5, 6, 7, 8, 9)
    join_values = (0, 2, 4) if args.quick else (0, 1, 2, 3, 4, 5)

    for name in args.workloads:
        workload = WORKLOADS[name]
        print("=" * 78)
        print(f"WORKLOAD {name}: {workload.description}")
        print("=" * 78)

        print(coverage_experiment(workload, n_queries=args.queries, fractions=fractions).render())
        print()
        print(scale_experiment(workload, base_scale=args.scale,
                               scale_factors=scale_factors, n_queries=3).render())
        print()
        print(selection_experiment(workload, values=sweep_values, scale=args.scale // 2,
                                   queries_per_value=2).render())
        print()
        print(join_experiment(workload, values=join_values, scale=args.scale // 2,
                              queries_per_value=2).render())
        print()
        print(unidiff_experiment(workload, values=join_values, scale=args.scale // 2,
                                 queries_per_value=2).render())
        print()
        print(constraints_experiment(workload, scale=args.scale // 2).render())
        print()
        print(mina_effect_experiment(workload, scale=args.scale // 2, n_queries=3).render())
        print()
        print(index_size_experiment(workload, scale=args.scale).render())
        print()
        print(efficiency_experiment(workload, n_queries=20).render())
        print()
        print(maintenance_experiment(workload, scales=(50, 100, 200, 400)).render())
        print()


if __name__ == "__main__":
    main()
