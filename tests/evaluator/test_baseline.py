"""Unit tests for the conventional-DBMS baseline (evalDBMS)."""

import pytest

from repro.core.query import Relation, eq
from repro.evaluator.algebra import evaluate
from repro.evaluator.baseline import ConventionalEvaluator, evaluate_conventional
from repro.storage.index import IndexSet
from repro.workloads import facebook


class TestBaselineCorrectness:
    def test_matches_reference_on_q1(self, fb_q1, fb_database, fb_access):
        baseline = evaluate_conventional(fb_q1, fb_database, fb_access)
        assert baseline.rows == evaluate(fb_q1, fb_database).rows

    def test_matches_reference_on_q0(self, fb_q0, fb_database, fb_access):
        baseline = evaluate_conventional(fb_q0, fb_database, fb_access)
        assert baseline.rows == evaluate(fb_q0, fb_database).rows

    def test_matches_reference_without_access_schema(self, fb_q2, fb_database):
        baseline = evaluate_conventional(fb_q2, fb_database)
        assert baseline.rows == evaluate(fb_q2, fb_database).rows


class TestBaselineAccessBehaviour:
    def test_index_scan_on_constant_key(self, fb_schema, fb_database, fb_access):
        """σ_{pid=p0}(friend) uses the ψ1 index: only p0's tuples are read."""
        friend = Relation.from_schema(fb_schema, "friend")
        query = friend.select(eq(friend["pid"], "p0")).project([friend["fid"]])
        baseline = evaluate_conventional(query, fb_database, fb_access)
        p0_degree = sum(1 for row in fb_database.relation("friend") if row[0] == "p0")
        assert baseline.counter.scanned == p0_degree
        assert baseline.counter.scanned < len(fb_database.relation("friend"))

    def test_full_scan_without_matching_index(self, fb_schema, fb_database, fb_access):
        """A selection on a non-key attribute cannot use any constraint index."""
        friend = Relation.from_schema(fb_schema, "friend")
        query = friend.select(eq(friend["fid"], "p1")).project([friend["pid"]])
        baseline = evaluate_conventional(query, fb_database, fb_access)
        assert baseline.counter.scanned == len(fb_database.relation("friend"))

    def test_join_scans_grow_with_database(self, fb_access):
        """The baseline's data access grows with |D| (the Figure 5 shape)."""
        q1 = facebook.query_q1()
        small = facebook.generate(scale=30, seed=5)
        large = facebook.generate(scale=120, seed=5)
        small_access = evaluate_conventional(q1, small, fb_access).counter.total
        large_access = evaluate_conventional(q1, large, fb_access).counter.total
        assert large_access > small_access

    def test_access_ratio(self, fb_q1, fb_database, fb_access):
        baseline = evaluate_conventional(fb_q1, fb_database, fb_access)
        assert 0 < baseline.access_ratio(fb_database.size) <= 1.0

    def test_counter_breakdown_only_scans(self, fb_q1, fb_database, fb_access):
        baseline = evaluate_conventional(fb_q1, fb_database, fb_access)
        assert baseline.counter.fetched == 0
        assert baseline.counter.scanned == baseline.counter.total

    def test_evaluator_with_indexes_argument(self, fb_q1, fb_database, fb_access, fb_indexes):
        evaluator = ConventionalEvaluator(fb_database, fb_access, fb_indexes)
        result = evaluator.evaluate(fb_q1)
        assert result.rows == evaluate(fb_q1, fb_database).rows
