"""Tests for the experiment drivers (small-scale runs of every figure/table).

These tests verify the *shape* claims of the paper on miniature instances:
bounded evaluation accesses a small, |D|-independent fraction of the data,
the baseline grows with |D|, coverage grows with ‖A‖, and the analysis
algorithms run in milliseconds.  The benchmark suite runs the same drivers at
larger scales.
"""

import math

import pytest

from repro.bench.experiments import (
    constraints_experiment,
    coverage_experiment,
    efficiency_experiment,
    index_size_experiment,
    join_experiment,
    maintenance_experiment,
    mina_effect_experiment,
    scale_experiment,
    select_covered_queries,
    selection_experiment,
    unidiff_experiment,
)
from repro.core.coverage import check_coverage
from repro.workloads import WORKLOADS

AIRCA = WORKLOADS["AIRCA"]
TFACC = WORKLOADS["TFACC"]
MCBM = WORKLOADS["MCBM"]


class TestSelectCoveredQueries:
    def test_returns_covered_queries(self):
        queries = select_covered_queries(TFACC, count=3, seed=5)
        assert len(queries) == 3
        for query in queries:
            assert check_coverage(query, TFACC.access_schema).is_covered


class TestCoverageExperiment:
    def test_fig6_monotone_in_constraints(self):
        table = coverage_experiment(AIRCA, n_queries=25, fractions=(0.25, 0.5, 1.0), seed=3)
        covered = table.column("covered_pct")
        bounded = table.column("bounded_pct")
        assert len(covered) == 3
        # more constraints => at least as many covered queries (full A vs the smallest subset)
        assert covered[-1] >= covered[0]
        # bounded is always at least covered (every covered query is bounded)
        for c, b in zip(covered, bounded):
            assert b >= c
        # with all constraints a sizeable fraction is covered
        assert covered[-1] >= 20.0


class TestScaleExperiment:
    def test_fig5_shape(self):
        table = scale_experiment(
            TFACC,
            base_scale=120,
            scale_factors=(0.25, 1.0),
            n_queries=3,
            seed=5,
        )
        ratios = table.column("P_DQ")
        dbms = table.column("evalDBMS_s")
        qp = table.column("evalQP_s")
        tuples = table.column("db_tuples")
        assert tuples[1] > tuples[0]
        # access ratio decreases (or stays equal) as the data grows: |D_Q| is bounded
        assert ratios[1] <= ratios[0] * 1.5
        # all ratios are small fractions of the database
        assert all(r < 0.5 for r in ratios)
        # bounded evaluation accesses less than the baseline scans at full scale
        assert not math.isnan(dbms[1])
        assert qp[1] >= 0

    def test_minimized_accesses_at_most_unminimized(self):
        table = scale_experiment(
            TFACC, base_scale=100, scale_factors=(1.0,), n_queries=3, seed=5
        )
        assert table.rows[0]["P_DQ"] <= table.rows[0]["P_DQ_minus"] * 1.01


class TestParameterSweeps:
    def test_selection_sweep_runs(self):
        table = selection_experiment(
            TFACC, values=(4, 6), seed=2, scale=80, queries_per_value=2,
            include_baseline=False,
        )
        assert [row["n_sel"] for row in table.rows] == [4, 6]
        for row in table.rows:
            if row["queries"]:
                assert row["P_DQ"] < 1.0

    def test_join_sweep_runs(self):
        table = join_experiment(
            TFACC, values=(0, 2), seed=2, scale=80, queries_per_value=2,
            include_baseline=False,
        )
        assert len(table.rows) == 2

    def test_unidiff_insensitivity(self):
        table = unidiff_experiment(
            TFACC, values=(0, 2), seed=2, scale=80, queries_per_value=2
        )
        rows = [row for row in table.rows if row["queries"]]
        assert rows, "expected at least one unidiff sweep point with covered queries"
        # evalQP stays in the same order of magnitude regardless of #-unidiff
        times = [row["evalQP_s"] for row in rows]
        assert max(times) < 1.0


class TestConstraintsExperiment:
    def test_more_constraints_cover_more(self):
        table = constraints_experiment(
            TFACC, fractions=(0.4, 1.0), seed=4, scale=80, n_queries=4
        )
        covered = table.column("covered_queries")
        assert covered[-1] >= covered[0]
        assert covered[-1] >= 1


class TestMinAEffect:
    def test_mina_reduces_cost_and_access(self):
        table = mina_effect_experiment(
            TFACC, seed=6, scale=80, n_queries=2, include_random_baseline=False
        )
        rows = {row["strategy"]: row for row in table.rows}
        full = rows["evalQP- (full A)"]
        minimized = rows["evalQP (minA)"]
        assert minimized["avg_cost"] <= full["avg_cost"]
        assert minimized["avg_constraints"] <= full["avg_constraints"]
        assert minimized["index_tuples"] <= full["index_tuples"]
        assert minimized["P_DQ"] <= full["P_DQ"] * 1.01


class TestIndexSizeExperiment:
    def test_reports_footprint(self):
        table = index_size_experiment(MCBM, seed=1, scale=60)
        row = table.rows[0]
        assert row["db_tuples"] > 0
        assert row["index_cells"] > 0
        assert row["cell_fraction"] > 0
        assert row["build_s"] >= 0


class TestEfficiencyExperiment:
    def test_algorithms_run_in_milliseconds(self):
        table = efficiency_experiment(AIRCA, n_queries=8, seed=9)
        by_name = {row["algorithm"]: row for row in table.rows}
        assert set(by_name) == {"ChkCov", "QPlan", "minA", "minADAG", "minAE"}
        assert by_name["ChkCov"]["runs"] == 8
        # the paper reports <= 199ms for all algorithms; allow slack for CI noise
        for name, row in by_name.items():
            if row["runs"]:
                assert row["max_ms"] < 2000, f"{name} too slow: {row}"


class TestMaintenanceExperiment:
    def test_work_flat_in_database_size(self):
        table = maintenance_experiment(TFACC, scales=(40, 120), delta_size=20, seed=3)
        work = table.column("work_units")
        assert work[0] == work[1]
        tuples = table.column("db_tuples")
        assert tuples[1] > tuples[0]
