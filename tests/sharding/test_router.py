"""Federated scatter/gather: row identity, epoch guards, routing, serving.

Every test compares the federation against a single-database reference: the
input database is left behind by :func:`~repro.sharding.router.build_topology`
(the shards own disjoint fragment copies) and, where the tests write, a
``write_observer`` mirrors every fully-applied routed batch back into it — so
``evaluate(query, database)`` is always the truth the router must match.
"""

import asyncio

import pytest

from repro.core.errors import (
    CircuitOpenError,
    MaintenanceError,
    StorageError,
    TransientFault,
)
from repro.discovery.maintenance import Update
from repro.evaluator.algebra import evaluate
from repro.serving.server import BoundedServer, ReadRequest, WriteRequest
from repro.serving.soak import SoakConfig, run_soak
from repro.sharding import RangePartitioner, build_topology
from repro.workloads import facebook


def mirrored_topology(scale=30, seed=5, **kwargs):
    """A federation plus the single-database reference it must stay identical to."""
    database = facebook.generate(scale=scale, seed=seed)
    access = facebook.access_schema(database.schema)

    def mirror(updates):
        for update in updates:
            instance = database.relation(update.relation)
            prepared = instance.prepare(update.row)
            if update.kind == "insert":
                instance.insert(prepared)
            else:
                instance.delete(prepared)

    router = build_topology(database, access, write_observer=mirror, **kwargs)
    return router, database


def covered_queries():
    # q0 is uncovered as written but has a covered rewriting (q0'); the
    # router must serve it bounded, like the engine does.
    return [facebook.query_q1(), facebook.query_q0_prime(), facebook.query_q0()]


class TestFederatedReads:
    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_rows_identical_to_single_database_reference(self, shards):
        router, database = mirrored_topology(shards=shards)
        for query in covered_queries():
            result = router.execute(query)
            assert result.strategy == "bounded"
            assert result.rows == evaluate(query, database).rows

    def test_heterogeneous_shards_both_serve_fetches(self):
        router, database = mirrored_topology(shards=2)
        assert [shard.kind for shard in router.shards] == ["memory", "sqlite"]
        for query in covered_queries():
            assert router.execute(query).rows == evaluate(query, database).rows
        fetched = set(router.metrics.latency.snapshot())
        # One federated plan executed fetch steps on both backends.
        assert fetched == {"shard:shard0-memory", "shard:shard1-sqlite"}
        assert router.metrics.scatters > 0
        assert router.metrics.merges == router.metrics.scatters

    def test_empty_shard_contributes_nothing_and_breaks_nothing(self):
        schema = facebook.schema()
        # Every key sorts below "zzz", so shard 1 owns no data at all.
        partitioner = RangePartitioner(
            schema, 2, {"friend": ["zzz"], "dine": ["zzz"], "cafe": ["zzz"]}
        )
        router, database = mirrored_topology(shards=2, partitioner=partitioner)
        assert router.shards[0].database.size == database.size
        assert router.shards[1].database.size == 0
        for query in covered_queries():
            assert router.execute(query).rows == evaluate(query, database).rows

    def test_partition_boundary_keys_route_to_the_upper_shard(self):
        schema = facebook.schema()
        partitioner = RangePartitioner(
            schema, 2, {"friend": ["p5"], "dine": ["p5"], "cafe": ["c5"]}
        )
        router, database = mirrored_topology(shards=2, partitioner=partitioner)
        # "p5" equals the cut point: by the bisect_right convention its rows
        # live on the upper shard, and a fetch keyed on it must go there.
        boundary_rows = {
            row for row in database.relation("friend").rows if row[0] == "p5"
        }
        assert boundary_rows, "scale 30 must include person p5"
        assert boundary_rows <= set(router.shards[1].database.relation("friend").rows)
        query = facebook.query_q1(person="p5")
        assert router.execute(query).rows == evaluate(query, database).rows
        assert router.metrics.routed > 0

    @pytest.mark.parametrize("delta_repair", [False, True])
    def test_result_cache_round_trip_survives_routed_writes(self, delta_repair):
        router, database = mirrored_topology(delta_repair=delta_repair)
        query = facebook.query_q1()
        reference = evaluate(query, database).rows
        assert router.execute(query).rows == reference
        assert router.execute(query).result_cached

        victim = sorted(database.relation("friend").rows)[0]
        report = router.apply_updates([Update.delete("friend", victim)])
        assert report.applied == 1
        assert router.metrics.write_batches == 1

        result = router.execute(query)
        # Legacy: the routed write sweeps the entry and the read recomputes.
        # Delta repair: the entry is patched in place and served directly.
        assert result.result_cached is delta_repair
        assert result.rows == evaluate(query, database).rows


def inject_racing_write(router, make_update):
    """Wrap every shard's fetch so the first N calls interleave a routed write."""

    for shard in router.shards:
        original = shard.fetch

        def racing(constraint, base, keys, counter=None, predicate=None, _original=original):
            partial = _original(constraint, base, keys, counter, predicate)
            update = make_update()
            if update is not None:
                router.apply_updates([update])
            return partial

        shard.fetch = racing


class TestWritesRacingReads:
    def test_snapshot_mismatch_retries_once_and_serves_the_new_epoch(self):
        router, database = mirrored_topology()
        victim = sorted(database.relation("friend").rows)[0]
        fired = []

        def one_delete():
            if fired:
                return None
            fired.append(True)
            return Update.delete("friend", victim)

        inject_racing_write(router, one_delete)
        query = facebook.query_q1()
        result = router.execute(query)
        # The racing write moved a dependency's epoch mid-merge: the first
        # attempt was discarded (one retry), the second ran clean, and the
        # served rows are the post-write reference — never a mixed-epoch mix
        # of pre- and post-delete partials.
        assert router.metrics.snapshot_retries == 1
        assert router.metrics.mixed_epoch_aborts == 0
        assert result.rows == evaluate(query, database).rows

    def test_persistent_race_aborts_with_a_typed_fault(self):
        router, database = mirrored_topology()
        victim = sorted(database.relation("cafe").rows)[0]
        state = {"delete": True}

        def toggle():
            kind = Update.delete if state["delete"] else Update.insert
            state["delete"] = not state["delete"]
            return kind("cafe", victim)

        inject_racing_write(router, toggle)
        with pytest.raises(TransientFault, match="epochs kept moving"):
            router.execute(facebook.query_q1())
        assert router.metrics.snapshot_retries == router.max_snapshot_retries + 1
        assert router.metrics.mixed_epoch_aborts == 1


class TestRoutedWrites:
    def test_partial_shard_failure_surfaces_a_merged_report(self):
        router, database = mirrored_topology(shards=2)
        by_shard = {0: None, 1: None}
        for row in sorted(database.relation("friend").rows):
            owner = router.partitioner.shard_for_row("friend", row)
            if by_shard[owner] is None:
                by_shard[owner] = row
        assert None not in by_shard.values(), "need a victim row on each shard"

        def broken(updates):
            raise MaintenanceError("injected shard failure")

        router.shards[1].apply_updates = broken
        batch = [
            Update.delete("friend", by_shard[0]),
            Update.delete("friend", by_shard[1]),
        ]
        with pytest.raises(MaintenanceError, match="injected shard failure") as info:
            router.apply_updates(batch)
        # Shard 0's portion stays applied and is accounted for; the router
        # still settled its clock/caches over what actually changed.
        assert info.value.report.applied == 1
        assert info.value.report.failed
        assert router.clock.global_version == 1


class TestDeltaRepairOverFederation:
    """Routed writes repair the router-level cache; anything racing drops it."""

    def test_routed_batch_patches_cached_federated_result(self):
        router, database = mirrored_topology()
        query = facebook.query_q1()
        router.execute(query)
        assert router.execute(query).result_cached
        report = router.apply_updates(
            [
                Update.insert("cafe", ("c_fed", "nyc")),
                Update.insert("friend", ("p0", "p_fed")),
                Update.insert("dine", ("p_fed", "c_fed", "may", 2015)),
            ]
        )
        assert report.applied == 3
        stats = router.cache_stats()["result_cache"]
        assert stats["repaired"] == 1  # one derivation pass for the batch
        assert stats["repair_fallbacks"] == 0
        assert router.cache_stats()["plan_store"]["sweeps"] == 0
        result = router.execute(query)
        assert result.result_cached
        assert ("c_fed",) in result.rows
        assert result.rows == evaluate(query, database).rows

    def test_direct_shard_write_makes_entry_stale_never_repaired(self):
        # Satellite 5: a write that bypasses the router moves a shard epoch
        # without a derivation; the next routed batch must *drop* the entry
        # (its fill snapshot no longer matches the pre-batch snapshot) —
        # repairing would stamp over the unseen write.
        router, database = mirrored_topology()
        query = facebook.query_q1()
        router.execute(query)
        direct = Update.insert("friend", ("p0", "p_direct"))
        owner = router.partitioner.shard_for_row("friend", direct.row)
        router.shards[owner].apply_updates([direct])
        database.insert("friend", direct.row)  # keep the reference in step
        router.apply_updates([Update.insert("friend", ("p0", "p_routed"))])
        stats = router.cache_stats()["result_cache"]
        assert stats["repaired"] == 0
        assert stats["repair_fallback_reasons"] == {"stale": 1}
        result = router.execute(query)
        assert not result.result_cached
        assert result.rows == evaluate(query, database).rows

    def test_write_racing_the_derivation_drops_entry_not_patches(self):
        # Satellite 5, the narrower window: a shard write landing *while*
        # the deriver re-scatters dirty fetches would let the patch merge
        # mixed epochs; the post-derivation validate catches it and the
        # entry is dropped as a race.
        router, database = mirrored_topology()
        query = facebook.query_q1()
        router.execute(query)
        side = Update.insert("cafe", ("c_race", "nyc"))
        side_owner = router.partitioner.shard_for_row("cafe", side.row)
        fired = []

        for shard in router.shards:
            original = shard.fetch

            def racing(
                constraint, base, keys, counter=None, predicate=None, _original=original
            ):
                partial = _original(constraint, base, keys, counter, predicate)
                if not fired:
                    fired.append(True)
                    router.shards[side_owner].apply_updates([side])
                    database.insert("cafe", side.row)
                return partial

            shard.fetch = racing

        router.apply_updates([Update.insert("friend", ("p0", "p_mid"))])
        stats = router.cache_stats()["result_cache"]
        assert fired, "the derivation must have scattered at least one fetch"
        assert stats["repaired"] == 0
        assert stats["repair_fallback_reasons"] == {"race": 1}
        result = router.execute(query)
        assert result.rows == evaluate(query, database).rows

    def test_failed_batch_sweeps_conservatively_instead_of_repairing(self):
        router, database = mirrored_topology(shards=2)
        query = facebook.query_q1()
        router.execute(query)
        assert router.execute(query).result_cached
        by_shard = {0: None, 1: None}
        for row in sorted(database.relation("friend").rows):
            owner = router.partitioner.shard_for_row("friend", row)
            if by_shard[owner] is None:
                by_shard[owner] = row

        def broken(updates):
            raise MaintenanceError("injected shard failure")

        router.shards[1].apply_updates = broken
        with pytest.raises(MaintenanceError):
            router.apply_updates(
                [Update.delete("friend", by_shard[0]), Update.delete("friend", by_shard[1])]
            )
        database.relation("friend").delete(by_shard[0])  # mirror the applied prefix
        stats = router.cache_stats()["result_cache"]
        assert stats["repaired"] == 0
        assert stats["invalidated"] == 1
        result = router.execute(query)
        assert not result.result_cached
        assert result.rows == evaluate(query, database).rows


class TestFallback:
    def test_uncovered_query_gathers_and_evaluates_conventionally(self):
        router, database = mirrored_topology()
        query = facebook.query_q2()
        result = router.execute(query)
        assert result.strategy == "conventional"
        assert result.rows == evaluate(query, database).rows

    def test_open_breaker_refuses_the_unbounded_fallback(self):
        router, _ = mirrored_topology()

        class RefusingBreaker:
            def allow(self):
                return False

            def record_success(self):
                pass

            def record_failure(self):
                pass

        router.fallback_breaker = RefusingBreaker()
        with pytest.raises(CircuitOpenError):
            router.execute(facebook.query_q2())


class TestBuildTopology:
    def test_rejects_unknown_backend_kind(self):
        database = facebook.generate(scale=10, seed=1)
        access = facebook.access_schema(database.schema)
        with pytest.raises(StorageError, match="unknown shard backend"):
            build_topology(database, access, shards=2, backends=["memory", "duckdb"])

    def test_rejects_backend_count_mismatch(self):
        database = facebook.generate(scale=10, seed=1)
        access = facebook.access_schema(database.schema)
        with pytest.raises(StorageError, match="backend kinds"):
            build_topology(database, access, shards=3, backends=["memory"] * 2)

    def test_rejects_partitioner_shard_count_mismatch(self):
        database = facebook.generate(scale=10, seed=1)
        access = facebook.access_schema(database.schema)
        partitioner = RangePartitioner(
            database.schema, 2, {"friend": ["p5"], "dine": ["p5"], "cafe": ["c5"]}
        )
        with pytest.raises(StorageError, match="configured for 2 shards"):
            build_topology(database, access, shards=3, partitioner=partitioner)


class TestServerOverRouter:
    def test_bounded_server_serves_a_federation(self):
        router, database = mirrored_topology()
        q1 = facebook.query_q1()
        q0_prime = facebook.query_q0_prime()
        victim = sorted(database.relation("friend").rows)[0]

        async def _run():
            async with BoundedServer(router) as server:
                first = await server.submit(ReadRequest(query=q1))
                write = await server.submit(
                    WriteRequest(updates=(Update.delete("friend", victim),))
                )
                second = await server.submit(ReadRequest(query=q1))
                third = await server.submit(ReadRequest(query=q0_prime))
                return first, write, second, third

        first, write, second, third = asyncio.run(_run())
        assert first.ok and first.strategy == "bounded" and first.snapshot_valid
        assert write.ok and write.strategy == "write"
        assert second.ok and second.snapshot_valid
        # The write routed through the shards and the mirror saw it, so the
        # reference evaluation is the post-write truth.
        assert second.rows == evaluate(q1, database).rows
        assert third.rows == evaluate(q0_prime, database).rows
        assert router.metrics.write_batches == 1


class TestShardedSoak:
    def test_quick_sharded_soak_passes_every_check(self):
        config = SoakConfig(
            scale=40,
            requests=60,
            seed=11,
            queue_depth=8,
            covered_queries=4,
            uncovered_queries=2,
            shards=3,
        )
        report = run_soak(config)
        assert report["passed"], report["checks"]
        assert report["checks"]["federation_scattered"]
        assert report["checks"]["no_mixed_epoch_merges"]
        assert report["checks"]["writes_routed"]
        assert report["config"]["faults"] is False  # chaos stays single-engine
        assert len(report["router"]["shards"]) == 3


class TestSelectPushdown:
    """Shard-side selection pushdown: fewer rows shipped, identical answers."""

    @staticmethod
    def _friend_fetch(builder, fb_access, source):
        from repro.core.plan import FetchOp

        psi1 = next(c for c in fb_access if c.name == "psi1")
        return builder.add(
            FetchOp(constraint=psi1, key_columns=("friend.pid",), inputs=(source,)),
            ["friend.fid", "friend.pid"],
        )

    def test_select_directly_on_fetch_is_fused(self, fb_access):
        from repro.core.plan import ColumnPredicate, ConstOp, PlanBuilder, ProjectOp, SelectOp
        from repro.sharding.router import _pushdown_sites

        builder = PlanBuilder(fb_access, occurrences={"friend": "friend"})
        t0 = builder.add(ConstOp(value="p0", column="friend.pid"), ["friend.pid"])
        t1 = self._friend_fetch(builder, fb_access, t0)
        t2 = builder.add(
            SelectOp(
                predicates=(ColumnPredicate("friend.fid", "=", "p1"),), inputs=(t1,)
            ),
            ["friend.fid", "friend.pid"],
        )
        t3 = builder.add(
            ProjectOp(columns=("friend.fid",), inputs=(t2,)), ["friend.fid"]
        )
        fused, filters = _pushdown_sites(builder.build(t3))
        assert fused == {t2: t1}
        assert [p.left for p in filters[t1]] == ["friend.fid"]

    def test_residual_predicate_traces_through_project_to_fetch(self, fb_access):
        from repro.core.plan import (
            ColumnPredicate,
            ConstOp,
            HashJoinOp,
            PlanBuilder,
            ProjectOp,
        )
        from repro.sharding.router import _pushdown_sites

        builder = PlanBuilder(fb_access, occurrences={"friend": "friend"})
        t0 = builder.add(ConstOp(value="p0", column="friend.pid"), ["friend.pid"])
        t1 = self._friend_fetch(builder, fb_access, t0)
        t2 = builder.add(
            ProjectOp(
                columns=("friend.fid",),
                inputs=(t1,),
                output_names=("fid",),
            ),
            ["fid"],
        )
        t3 = builder.add(ConstOp(value="p1", column="other"), ["other"])
        t4 = builder.add(
            HashJoinOp(
                pairs=(),
                residual=(ColumnPredicate("fid", "=", "p1"),),
                inputs=(t2, t3),
            ),
            ["fid", "other"],
        )
        fused, filters = _pushdown_sites(builder.build(t4))
        assert not fused
        # the residual's "fid" traced through the projection rename to the
        # fetch's "friend.fid"
        assert [p.left for p in filters[t1]] == ["friend.fid"]

    def test_no_pushdown_through_set_operations_or_shared_fetches(self, fb_access):
        from repro.core.plan import (
            ColumnPredicate,
            ConstOp,
            PlanBuilder,
            ProjectOp,
            SelectOp,
            UnionOp,
        )
        from repro.sharding.router import _pushdown_sites

        builder = PlanBuilder(fb_access, occurrences={"friend": "friend"})
        t0 = builder.add(ConstOp(value="p0", column="friend.pid"), ["friend.pid"])
        t1 = self._friend_fetch(builder, fb_access, t0)
        t2 = self._friend_fetch(builder, fb_access, t0)
        t3 = builder.add(UnionOp(inputs=(t1, t2)), ["friend.fid", "friend.pid"])
        t4 = builder.add(
            SelectOp(
                predicates=(ColumnPredicate("friend.fid", "=", "p1"),), inputs=(t3,)
            ),
            ["friend.fid", "friend.pid"],
        )
        fused, filters = _pushdown_sites(builder.build(t4))
        assert not fused and not filters

        # a fetch with two consumers must not be filtered either
        builder = PlanBuilder(fb_access, occurrences={"friend": "friend"})
        t0 = builder.add(ConstOp(value="p0", column="friend.pid"), ["friend.pid"])
        t1 = self._friend_fetch(builder, fb_access, t0)
        t2 = builder.add(
            SelectOp(
                predicates=(ColumnPredicate("friend.fid", "=", "p1"),), inputs=(t1,)
            ),
            ["friend.fid", "friend.pid"],
        )
        t3 = builder.add(
            UnionOp(inputs=(t1, t2)), ["friend.fid", "friend.pid"]
        )
        fused, filters = _pushdown_sites(builder.build(t3))
        assert not fused and not filters

    def test_fused_select_executes_shard_side_with_identical_rows(self, fb_access):
        from repro.core.plan import ColumnPredicate, ConstOp, PlanBuilder, SelectOp
        from repro.evaluator.executor import execute_plan
        from repro.storage.index import IndexSet

        router, database = mirrored_topology(shards=3)
        builder = PlanBuilder(fb_access, occurrences={"friend": "friend"})
        t0 = builder.add(ConstOp(value="p0", column="friend.pid"), ["friend.pid"])
        t1 = self._friend_fetch(builder, fb_access, t0)
        fid = sorted(database.relation("friend").rows)[0][1]
        t2 = builder.add(
            SelectOp(
                predicates=(ColumnPredicate("friend.fid", "=", fid),), inputs=(t1,)
            ),
            ["friend.fid", "friend.pid"],
        )
        plan = builder.build(t2)
        federated = router._executor.execute(plan)
        indexes = IndexSet.build(database, fb_access, check=False)
        reference = execute_plan(plan, database, indexes)
        assert federated.rows == reference.rows
        assert router.metrics.select_pushdowns > 0
        # only the selected rows crossed the shard boundary
        assert router.metrics.merge_rows == len(reference.rows)
        assert federated.counter.fetched == reference.counter.fetched

    def test_federated_pushdown_on_optimized_workload_plans(self):
        from repro.bench.analytic import analytic_queries
        from repro.sharding import build_topology
        from repro.workloads import WORKLOADS

        workload = WORKLOADS["TFACC"]
        database = workload.database(scale=120, seed=7)
        router = build_topology(database, workload.access_schema, shards=3)
        for query in analytic_queries(workload):
            assert router.execute(query).rows == evaluate(query, database).rows
        metrics = router.metrics.snapshot()
        assert metrics["select_pushdowns"] > 0
        assert metrics["pushdown_rows_filtered"] > 0
        assert "executor" in router.cache_stats()


class TestShardFetchCache:
    """Per-shard fetch-partial caches: hits replay exact accounting and are
    swept by routed writes (satellite of the self-healing federation PR)."""

    def test_repeat_scatter_hits_with_identical_accounting(self):
        # Router result cache off, so the second execution re-scatters and
        # must be served from the shard-local fetch-partial caches.
        router, database = mirrored_topology(
            shards=2, backends="memory", result_cache_size=0
        )
        query = facebook.query_q1()
        first = router.execute(query)
        assert router.metrics.shard_cache_hits == 0
        misses = router.metrics.shard_cache_misses
        assert misses > 0
        second = router.execute(query)
        assert second.rows == first.rows == evaluate(query, database).rows
        assert router.metrics.shard_cache_hits > 0
        assert router.metrics.shard_cache_misses == misses
        # The bound is about tuples *touched*: a cached partial stands for
        # the same touched tuples, so P(D_Q) reporting is identical.
        assert second.counter.fetched == first.counter.fetched
        assert second.counter.index_probes == first.counter.index_probes

    def test_routed_write_sweeps_dependent_partials(self):
        router, database = mirrored_topology(
            shards=2, backends="memory", result_cache_size=0
        )
        query = facebook.query_q1()
        router.execute(query)
        router.execute(query)
        hits = router.metrics.shard_cache_hits
        assert hits > 0
        victim = sorted(database.relation("friend").rows)[0]
        router.apply_updates([Update.delete("friend", victim)])
        result = router.execute(query)
        # The friend partials were swept (their relation changed), so the
        # post-write read recomputes them and serves the new truth.
        assert result.rows == evaluate(query, database).rows
        assert router.metrics.shard_cache_misses > 0

    def test_counters_surface_through_router_stats(self):
        router, _ = mirrored_topology(
            shards=2, backends="memory", result_cache_size=0
        )
        query = facebook.query_q1()
        router.execute(query)
        router.execute(query)
        scatter = router.stats()["scatter_gather"]
        assert scatter["shard_cache_hits"] == router.metrics.shard_cache_hits
        assert scatter["shard_cache_misses"] == router.metrics.shard_cache_misses
        hits = sum(shard.cache_counters()[0] for shard in router.shards)
        assert hits == router.metrics.shard_cache_hits

    def test_sqlite_shards_report_zero_cache_traffic(self):
        router, _ = mirrored_topology(shards=2, backends="sqlite")
        router.execute(facebook.query_q1())
        assert all(shard.cache_counters() == (0, 0) for shard in router.shards)
