"""Perf-trajectory tracking: append bench reports, gate on regressions.

Reads the JSON report written by ``bench_hot_path.py``, appends a compact
entry to a tracked time series (``BENCH_trajectory.json``), and **fails**
(exit code 1) when warm-path throughput regressed more than ``--threshold``
(default 30%) against the previous recorded entry of the same mode.

The comparison is the geometric mean of per-workload ``warm_qps`` ratios —
robust to workloads with very different absolute throughput.  Entries of
different modes (``--quick`` vs full) are never compared against each other,
and absolute throughput is only compared between entries recorded on the
**same host**: against an entry from a different machine (e.g. a laptop
baseline vs a CI runner) the gate falls back to the dimensionless
``mean_speedup`` (warm/cold ratio), which tracks how much the hot path wins
over re-planning independently of how fast the hardware is.  Cold-path
execution throughput (``cold_qps``, from the analytic-query scenario) is
gated the same way, with the dimensionless columnar/row speedup as its
cross-host fallback; so is delta-maintenance throughput (``delta_qps``,
from the dependent-write scenario), with the repair/invalidate speedup as
its cross-host fallback.

Usage (as wired into CI)::

    PYTHONPATH=src python benchmarks/bench_hot_path.py --quick --output BENCH_hot_path.json
    python benchmarks/track_trajectory.py --bench BENCH_hot_path.json \
        --trajectory BENCH_trajectory.json
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path


def _git_commit() -> str | None:
    try:
        head = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except OSError:
        return None
    return head.stdout.strip() or None if head.returncode == 0 else None


def serving_summary(soak_report: dict) -> dict:
    """The compact serving-tier summary merged into a trajectory entry.

    Pulls the operational health numbers out of a soak report
    (``repro.cli soak --output``): queue pressure, shed counts by reason,
    covered-path latency quantiles, breaker activity, and whether every
    robustness check held.
    """
    serving = soak_report.get("server", {}).get("serving", {})
    breaker = soak_report.get("server", {}).get("breaker", {})
    latency = serving.get("latency", {})
    covered = {
        key: latency[key]
        for key in ("bounded", "result_cache")
        if key in latency
    }
    return {
        "passed": soak_report.get("passed"),
        "queue_depth_peak": serving.get("queue_depth_peak"),
        "sheds": serving.get("sheds", {}),
        "covered_p99_ms": soak_report.get("covered_p99_ms"),
        "latency": covered,
        "breaker_times_opened": breaker.get("times_opened"),
        "write_failures": serving.get("write_failures"),
    }


def federated_summary(federated_report: dict) -> dict:
    """The compact scatter/gather summary merged into a trajectory entry.

    Pulls per-workload federated throughput (at the largest measured shard
    count) out of a ``bench_federated.py`` report, plus the dimensionless
    federated/single ratio used for cross-host comparisons and the merge
    statistics worth tracking over time.
    """
    federated_qps = {}
    merge_rows_mean = {}
    replicated_qps = {}
    degraded_ratio = {}
    replication_counters = {}
    for workload in federated_report.get("workloads", []):
        if workload.get("federated_qps") is None:
            continue
        name = workload["workload"]
        federated_qps[name] = workload["federated_qps"]
        top = workload.get("topologies", {})
        if top:
            largest = top[max(top, key=int)]
            merge_rows_mean[name] = largest.get("scatter_gather", {}).get(
                "merge_rows_mean"
            )
        replicated = workload.get("replicated")
        if replicated:
            replicated_qps[name] = replicated.get("qps")
            degraded_ratio[name] = replicated.get("degraded_ratio")
            replication = replicated.get("replication", {})
            for counter in ("failovers", "quarantines", "catch_ups",
                            "hedged_reads", "rows_resynced"):
                replication_counters[counter] = (
                    replication_counters.get(counter, 0)
                    + (replication.get(counter) or 0)
                )
    summary = {
        "shard_counts": federated_report.get("shard_counts"),
        "federated_qps": federated_qps,
        "mean_federated_ratio": federated_report.get("mean_federated_ratio"),
        "merge_rows_mean": merge_rows_mean,
    }
    if replicated_qps:
        # Replication health travels with the throughput numbers: a bench
        # run whose kill-one-replica pass stopped failing over (or started
        # quarantining everything) shows up in the trajectory, not just in
        # soak artifacts.
        summary["replicated_qps"] = replicated_qps
        summary["replica_degraded_ratio"] = degraded_ratio
        summary["replication"] = replication_counters
    return summary


def entry_from_report(report: dict) -> dict:
    """The compact trajectory entry for one bench report."""
    warm_qps = {
        w["workload"]: w["warm_qps"]
        for w in report.get("workloads", [])
        if "warm_qps" in w
    }
    mixed_speedup = {
        m["workload"]: m["speedup"]
        for m in report.get("mixed", [])
        if m.get("speedup") is not None
    }
    cold_qps = {
        c["workload"]: c["cold_qps"]
        for c in report.get("cold_path", [])
        if c.get("cold_qps")
    }
    delta_qps = {
        d["workload"]: d["delta_qps"]
        for d in report.get("delta", [])
        if d.get("delta_qps")
    }
    return {
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "commit": _git_commit(),
        "host": platform.node() or "unknown",
        "mode": report.get("mode", "unknown"),
        "warm_qps": warm_qps,
        "mean_speedup": report.get("mean_speedup"),
        "mixed_speedup": mixed_speedup,
        "cold_qps": cold_qps,
        "mean_columnar_speedup": report.get("mean_columnar_speedup"),
        "delta_qps": delta_qps,
        "mean_delta_speedup": report.get("mean_delta_speedup"),
    }


def regression_ratio(
    previous: dict, current: dict, key: str = "warm_qps"
) -> float | None:
    """Geometric-mean ratio of current/previous per-workload throughput under
    ``key`` (``None`` when the entries share no measured workload)."""
    shared = [
        name
        for name, qps in previous.get(key, {}).items()
        if qps and current.get(key, {}).get(name)
    ]
    if not shared:
        return None
    logs = [
        math.log(current[key][name] / previous[key][name])
        for name in shared
    ]
    return math.exp(sum(logs) / len(logs))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", type=Path, default=Path("BENCH_hot_path.json"),
                        help="bench report to record (from bench_hot_path.py)")
    parser.add_argument("--trajectory", type=Path, default=Path("BENCH_trajectory.json"),
                        help="tracked time-series file to append to")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="max tolerated warm-qps regression (0.30 = 30%%)")
    parser.add_argument("--no-gate", action="store_true",
                        help="record the entry but never fail")
    parser.add_argument("--serving", type=Path,
                        help="soak report (repro.cli soak --output) whose serving "
                             "metrics join this entry (queue peak, sheds, p50/p99)")
    parser.add_argument("--federated", type=Path,
                        help="federated bench report (bench_federated.py --output) "
                             "whose scatter/gather throughput joins this entry and "
                             "is gated like the warm-path numbers")
    args = parser.parse_args(argv)

    report = json.loads(args.bench.read_text())
    entry = entry_from_report(report)
    if args.serving:
        entry["serving"] = serving_summary(json.loads(args.serving.read_text()))
    if args.federated:
        entry["federated"] = federated_summary(json.loads(args.federated.read_text()))

    if args.trajectory.exists():
        trajectory = json.loads(args.trajectory.read_text())
    else:
        trajectory = {"benchmark": "hot_path", "entries": []}

    previous = next(
        (e for e in reversed(trajectory["entries"]) if e.get("mode") == entry["mode"]),
        None,
    )
    trajectory["entries"].append(entry)
    args.trajectory.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(
        f"recorded entry #{len(trajectory['entries'])} "
        f"(mode={entry['mode']}, commit={entry['commit']}) in {args.trajectory}"
    )

    if previous is None:
        print("no previous entry of this mode: nothing to gate against")
        return 0
    same_host = previous.get("host") == entry["host"]
    gates: list[tuple[str, float | None]] = []
    if same_host:
        gates.append(("warm throughput", regression_ratio(previous, entry)))
    else:
        # Different hardware: absolute qps is not comparable; gate on the
        # warm/cold speedup ratio, which is machine-independent.
        prev_speedup, cur_speedup = previous.get("mean_speedup"), entry["mean_speedup"]
        ratio = (cur_speedup / prev_speedup) if prev_speedup and cur_speedup else None
        gates.append((f"warm/cold speedup (cross-host vs {previous.get('host')})", ratio))
    if entry.get("cold_qps") and previous.get("cold_qps"):
        if same_host:
            gates.append((
                "cold-path throughput",
                regression_ratio(previous, entry, key="cold_qps"),
            ))
        else:
            # Cross-host fallback for the cold path: the columnar/row speedup
            # is dimensionless, like the warm/cold speedup.
            prev_cs = previous.get("mean_columnar_speedup")
            cur_cs = entry.get("mean_columnar_speedup")
            gates.append((
                "columnar/row speedup (cross-host)",
                (cur_cs / prev_cs) if prev_cs and cur_cs else None,
            ))
    if entry.get("delta_qps") and previous.get("delta_qps"):
        if same_host:
            gates.append((
                "delta-repair throughput",
                regression_ratio(previous, entry, key="delta_qps"),
            ))
        else:
            # Cross-host fallback for delta maintenance: the
            # repair/invalidate speedup is dimensionless.
            prev_ds = previous.get("mean_delta_speedup")
            cur_ds = entry.get("mean_delta_speedup")
            gates.append((
                "repair/invalidate speedup (cross-host)",
                (cur_ds / prev_ds) if prev_ds and cur_ds else None,
            ))
    if "federated" in entry and "federated" in previous:
        if same_host:
            gates.append((
                "federated throughput",
                regression_ratio(
                    previous["federated"], entry["federated"], key="federated_qps"
                ),
            ))
        else:
            # Cross-host fallback for the federation: the federated/single
            # ratio is dimensionless, like the warm/cold speedup.
            prev_ratio = previous["federated"].get("mean_federated_ratio")
            cur_ratio = entry["federated"].get("mean_federated_ratio")
            gates.append((
                "federated/single ratio (cross-host)",
                (cur_ratio / prev_ratio) if prev_ratio and cur_ratio else None,
            ))

    failed = False
    compared = False
    for metric, ratio in gates:
        if ratio is None:
            print(f"{metric}: no comparable number with the previous entry")
            continue
        compared = True
        print(
            f"{metric} vs previous run ({previous.get('commit')}): "
            f"{ratio:.2f}x (gate: >= {1 - args.threshold:.2f}x)"
        )
        if not args.no_gate and ratio < 1 - args.threshold:
            print(
                f"FAIL: {metric} regressed more than "
                f"{args.threshold:.0%} vs the previous recorded run",
                file=sys.stderr,
            )
            failed = True
    if not compared:
        print("no comparable metric with the previous entry: gate skipped")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
