"""Unit tests for database statistics collection."""

from repro.storage.database import Database
from repro.storage.statistics import DatabaseStatistics


class TestStatistics:
    def test_collect_counts(self, fb_schema):
        database = Database(fb_schema)
        database.insert_many("cafe", [("c1", "nyc"), ("c2", "nyc"), ("c3", "boston")])
        stats = DatabaseStatistics.collect(database)
        cafe = stats["cafe"]
        assert cafe.row_count == 3
        assert cafe.distinct("cid") == 3
        assert cafe.distinct("city") == 2
        assert stats.total_rows == 3
        assert "cafe" in stats

    def test_selectivity(self, fb_schema):
        database = Database(fb_schema)
        database.insert_many("cafe", [(f"c{i}", "nyc") for i in range(10)])
        stats = DatabaseStatistics.collect(database)
        assert stats["cafe"].selectivity("city") == 1.0
        assert stats["cafe"].selectivity("cid") == 0.1

    def test_selectivity_of_empty_relation(self, fb_schema):
        database = Database(fb_schema)
        stats = DatabaseStatistics.collect(database)
        assert stats["friend"].selectivity("pid") == 1.0
        assert stats["friend"].distinct("pid") == 0

    def test_sample_values_bounded(self, fb_schema):
        database = Database(fb_schema)
        database.insert_many("cafe", [(f"c{i}", f"city{i}") for i in range(100)])
        stats = DatabaseStatistics.collect(database, sample_size=5)
        assert len(stats["cafe"].sample_values["cid"]) == 5

    def test_workload_statistics(self, fb_database):
        stats = DatabaseStatistics.collect(fb_database)
        assert stats["dine"].row_count == len(fb_database.relation("dine"))
        assert stats["dine"].distinct("month") <= 12
