"""Tests for the experiment-table helpers."""

import pytest

from repro.bench.metrics import ExperimentTable, format_ratio, format_seconds


class TestFormatting:
    def test_format_seconds_ranges(self):
        assert format_seconds(5e-5).endswith("µs")
        assert format_seconds(0.02).endswith("ms")
        assert format_seconds(2.5).endswith("s")

    def test_format_ratio(self):
        assert format_ratio(0) == "0"
        assert "e-06" in format_ratio(1.7e-6)


class TestExperimentTable:
    def test_add_row_and_column(self):
        table = ExperimentTable("demo", ["x", "y"])
        table.add_row(x=1, y=2.0)
        table.add_row(x=2, y=3.5)
        assert table.column("x") == [1, 2]
        assert table.column("y") == [2.0, 3.5]

    def test_missing_column_rejected(self):
        table = ExperimentTable("demo", ["x", "y"])
        with pytest.raises(ValueError, match="missing columns"):
            table.add_row(x=1)

    def test_render_contains_headers_and_values(self):
        table = ExperimentTable("demo title", ["metric", "value"])
        table.add_row(metric="P_DQ", value=1.7e-6)
        rendered = table.render()
        assert "demo title" in rendered
        assert "metric" in rendered
        assert "1.70e-06" in rendered

    def test_render_empty_table(self):
        table = ExperimentTable("empty", ["a"])
        rendered = table.render()
        assert "empty" in rendered
        assert "a" in rendered

    def test_float_formatting_trims_zeros(self):
        table = ExperimentTable("t", ["v"])
        table.add_row(v=2.5000)
        assert "2.5" in table.render()
        assert "2.5000" not in table.render()
