"""Unit tests for relational schemas and attributes."""

import pytest

from repro.core.errors import SchemaError
from repro.core.schema import Attribute, DatabaseSchema, RelationSchema


class TestAttribute:
    def test_str_is_qualified(self):
        assert str(Attribute("dine", "cid")) == "dine.cid"

    def test_parse_qualified(self):
        attr = Attribute.parse("cafe.city")
        assert attr == Attribute("cafe", "city")

    def test_parse_unqualified_with_default(self):
        assert Attribute.parse("city", "cafe") == Attribute("cafe", "city")

    def test_parse_unqualified_without_default_raises(self):
        with pytest.raises(SchemaError):
            Attribute.parse("city")

    def test_ordering_and_hashing(self):
        a = Attribute("r", "a")
        b = Attribute("r", "b")
        assert a < b
        assert len({a, Attribute("r", "a"), b}) == 2


class TestRelationSchema:
    def test_basic_properties(self):
        schema = RelationSchema("friend", ["pid", "fid"])
        assert len(schema) == 2
        assert "pid" in schema
        assert "xid" not in schema
        assert list(schema) == ["pid", "fid"]

    def test_position_lookup(self):
        schema = RelationSchema("dine", ["pid", "cid", "month", "year"])
        assert schema.position("month") == 2
        assert schema.positions(["year", "pid"]) == (3, 0)

    def test_position_unknown_attribute(self):
        schema = RelationSchema("dine", ["pid", "cid"])
        with pytest.raises(SchemaError, match="no attribute"):
            schema.position("city")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            RelationSchema("r", ["a", "a"])

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("", ["a"])

    def test_empty_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", [])

    def test_qualified_attributes(self):
        schema = RelationSchema("cafe", ["cid", "city"])
        assert schema.qualified() == (Attribute("cafe", "cid"), Attribute("cafe", "city"))

    def test_rename_keeps_attributes(self):
        schema = RelationSchema("cafe", ["cid", "city"])
        renamed = schema.rename("cafe2")
        assert renamed.name == "cafe2"
        assert renamed.attributes == schema.attributes

    def test_equality_and_hash(self):
        a = RelationSchema("r", ["x", "y"])
        b = RelationSchema("r", ["x", "y"])
        c = RelationSchema("r", ["y", "x"])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c


class TestDatabaseSchema:
    def test_from_dict_and_lookup(self, fb_schema):
        assert "friend" in fb_schema
        assert fb_schema["dine"].attributes == ("pid", "cid", "month", "year")
        assert len(fb_schema) == 3

    def test_unknown_relation(self, fb_schema):
        with pytest.raises(SchemaError, match="unknown relation"):
            fb_schema["restaurant"]

    def test_duplicate_relation_rejected(self):
        schema = DatabaseSchema([RelationSchema("r", ["a"])])
        with pytest.raises(SchemaError, match="already declared"):
            schema.add(RelationSchema("r", ["b"]))

    def test_relation_names_order(self, fb_schema):
        assert fb_schema.relation_names() == ("friend", "dine", "cafe")

    def test_get_returns_none_for_missing(self, fb_schema):
        assert fb_schema.get("nope") is None

    def test_with_renaming_adds_occurrences(self, fb_schema):
        extended = fb_schema.with_renaming({"dine": "dine_2"})
        assert "dine_2" in extended
        assert extended["dine_2"].attributes == fb_schema["dine"].attributes
        # the original schema is untouched
        assert "dine_2" not in fb_schema

    def test_equality(self, fb_schema):
        assert fb_schema == DatabaseSchema.from_dict(
            {
                "friend": ["pid", "fid"],
                "dine": ["pid", "cid", "month", "year"],
                "cafe": ["cid", "city"],
            }
        )
