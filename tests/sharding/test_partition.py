"""Partitioners: deterministic assignment, disjoint cover, boundary convention."""

import zlib

import pytest

from repro.core.errors import StorageError
from repro.sharding import HashPartitioner, RangePartitioner, stable_hash
from repro.workloads import facebook


@pytest.fixture
def fb_schema():
    return facebook.schema()


class TestStableHash:
    def test_is_crc32_of_repr(self):
        # Python's str hash is salted per interpreter; the partitioner must
        # place the same key on the same shard across processes.
        assert stable_hash("p0") == zlib.crc32(repr("p0").encode("utf-8"))
        assert stable_hash(2015) == zlib.crc32(repr(2015).encode("utf-8"))

    def test_repeated_calls_agree(self):
        assert stable_hash(("p0", "c1")) == stable_hash(("p0", "c1"))


class TestHashPartitioner:
    def test_default_key_is_the_first_attribute(self, fb_schema):
        partitioner = HashPartitioner(fb_schema, 3)
        assert partitioner.attribute("friend") == "pid"
        assert partitioner.attribute("cafe") == "cid"

    def test_key_override_changes_routing(self, fb_schema):
        by_pid = HashPartitioner(fb_schema, 3)
        by_fid = HashPartitioner(fb_schema, 3, keys={"friend": "fid"})
        row = ("p1", "p2")
        assert by_pid.shard_for_row("friend", row) == by_pid.shard_for_value(
            "friend", "p1"
        )
        assert by_fid.shard_for_row("friend", row) == by_fid.shard_for_value(
            "friend", "p2"
        )

    def test_partition_is_a_disjoint_cover(self, fb_schema):
        database = facebook.generate(scale=25, seed=2)
        partitioner = HashPartitioner(fb_schema, 3)
        fragments = partitioner.partition(database)
        assert len(fragments) == 3
        for name in database.relation_names():
            original = set(database.relation(name).rows)
            pieces = [set(fragment.relation(name).rows) for fragment in fragments]
            assert set().union(*pieces) == original
            assert sum(len(piece) for piece in pieces) == len(original)  # disjoint
            for index, piece in enumerate(pieces):
                for row in piece:
                    assert partitioner.shard_for_row(name, row) == index

    def test_partition_leaves_the_input_untouched(self, fb_schema):
        database = facebook.generate(scale=25, seed=2)
        before = database.size
        HashPartitioner(fb_schema, 4).partition(database)
        assert database.size == before

    def test_validation_errors(self, fb_schema):
        with pytest.raises(StorageError, match="shard count"):
            HashPartitioner(fb_schema, 0)
        with pytest.raises(StorageError, match="not an attribute"):
            HashPartitioner(fb_schema, 2, keys={"friend": "city"})
        with pytest.raises(StorageError, match="unknown relations"):
            HashPartitioner(fb_schema, 2, keys={"nosuch": "pid"})
        with pytest.raises(StorageError, match="no partitioning defined"):
            HashPartitioner(fb_schema, 2).attribute("nosuch")


class TestRangePartitioner:
    def boundaries(self):
        return {"friend": ["p5"], "dine": ["p5"], "cafe": ["c5"]}

    def test_boundary_value_belongs_to_the_upper_shard(self, fb_schema):
        partitioner = RangePartitioner(fb_schema, 2, self.boundaries())
        # bisect_right: a boundary opens the shard to its right.
        assert partitioner.shard_for_value("friend", "p5") == 1
        assert partitioner.shard_for_value("friend", "p49") == 0
        assert partitioner.shard_for_value("friend", "p6") == 1

    def test_partition_respects_the_boundaries(self, fb_schema):
        database = facebook.generate(scale=25, seed=2)
        partitioner = RangePartitioner(fb_schema, 2, self.boundaries())
        low, high = partitioner.partition(database)
        for row in low.relation("friend").rows:
            assert row[0] < "p5"
        for row in high.relation("friend").rows:
            assert row[0] >= "p5"

    def test_validation_errors(self, fb_schema):
        with pytest.raises(StorageError, match="must be sorted"):
            RangePartitioner(fb_schema, 3, {"friend": ["p9", "p5"]})
        with pytest.raises(StorageError, match="needs 2 boundaries"):
            RangePartitioner(fb_schema, 3, {"friend": ["p5"]})
        partial = RangePartitioner(fb_schema, 2, {"friend": ["p5"]})
        with pytest.raises(StorageError, match="no range boundaries"):
            partial.shard_for_value("cafe", "c1")

    def test_from_database_quantiles_cover_every_relation(self, fb_schema):
        database = facebook.generate(scale=25, seed=2)
        partitioner = RangePartitioner.from_database(database, 3)
        fragments = partitioner.partition(database)
        for name in database.relation_names():
            original = set(database.relation(name).rows)
            pieces = [set(fragment.relation(name).rows) for fragment in fragments]
            assert set().union(*pieces) == original
            assert sum(len(piece) for piece in pieces) == len(original)
        # Quantile cuts spread a scale-25 social graph over all three shards.
        assert sum(1 for fragment in fragments if fragment.size) >= 2
