"""Exp-2: efficiency of the analysis algorithms (CovChk, QPlan, minA, minADAG, minAE).

The paper reports at most 65ms / 199ms / 86ms / 84ms / 74ms respectively for
queries over ~22–366 constraints.  Here every algorithm is benchmarked on a
representative covered query of each workload (pytest-benchmark statistics),
and a summary table over a batch of queries is printed for EXPERIMENTS.md.
"""

import pytest

from repro.bench.experiments import efficiency_experiment
from repro.core.coverage import check_coverage
from repro.core.minimize import (
    minimize_access,
    minimize_access_acyclic,
    minimize_access_elementary,
)
from repro.core.planner import generate_plan


@pytest.fixture(scope="module")
def covered_query(prepared):
    return prepared["queries"][0]


def test_chkcov(benchmark, prepared, covered_query):
    workload = prepared["workload"]
    result = benchmark(check_coverage, covered_query, workload.access_schema)
    assert result.is_covered


def test_qplan(benchmark, prepared, covered_query):
    workload = prepared["workload"]
    coverage = check_coverage(covered_query, workload.access_schema)
    plan = benchmark(generate_plan, coverage)
    assert plan.is_bounded


def test_mina(benchmark, prepared, covered_query):
    workload = prepared["workload"]
    result = benchmark(minimize_access, covered_query, workload.access_schema)
    assert len(result.selected) >= 1


def test_minadag(benchmark, prepared, covered_query):
    workload = prepared["workload"]
    result = benchmark(minimize_access_acyclic, covered_query, workload.access_schema)
    assert len(result.selected) >= 1


def test_minae(benchmark, prepared, covered_query):
    workload = prepared["workload"]
    result = benchmark(minimize_access_elementary, covered_query, workload.access_schema)
    assert len(result.selected) >= 1


def test_efficiency_summary_table(benchmark, workload):
    table = benchmark.pedantic(
        efficiency_experiment,
        kwargs={"workload": workload, "n_queries": 25, "seed": 37},
        rounds=1,
        iterations=1,
    )
    print()
    print(table.render())
    for row in table.rows:
        if row["runs"]:
            # the paper's ceiling is 199ms; stay within the same order of magnitude
            assert row["max_ms"] < 2000
