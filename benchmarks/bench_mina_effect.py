"""Exp-1(III): effectiveness of minA, plus an ablation of its greedy weight.

Compares three strategies on the same covered queries:

* ``evalQP-`` — plans generated against the full access schema,
* ``evalQP``  — plans generated against the minA-minimized subset,
* an ablation that runs the same greedy loop with the weight's ``c1`` set to
  0 (i.e. ignoring the constraint bounds when choosing what to drop).

Reported per strategy: average number of constraints kept, their Σ N cost,
the fraction of data accessed, and the index footprint the strategy needs.
"""

from repro.bench.experiments import mina_effect_experiment


def test_mina_effectiveness(benchmark, workload, bench_scale):
    table = benchmark.pedantic(
        mina_effect_experiment,
        kwargs={
            "workload": workload,
            "seed": 29,
            "scale": bench_scale // 2,
            "n_queries": 4,
            "include_random_baseline": True,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(table.render())

    rows = {row["strategy"]: row for row in table.rows}
    full = rows["evalQP- (full A)"]
    minimized = rows["evalQP (minA)"]
    # minA keeps fewer constraints, with lower estimated cost, and needs a
    # smaller index footprint than running against the full schema.
    assert minimized["avg_constraints"] <= full["avg_constraints"]
    assert minimized["avg_cost"] <= full["avg_cost"]
    assert minimized["index_tuples"] <= full["index_tuples"]
    assert minimized["P_DQ"] <= full["P_DQ"] * 1.05
