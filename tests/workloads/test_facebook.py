"""Tests for the Example 1 workload (friend/dine/cafe)."""

import pytest

from repro.core.coverage import is_covered
from repro.evaluator.algebra import evaluate
from repro.workloads import facebook


class TestSchemaAndConstraints:
    def test_schema_relations(self):
        schema = facebook.schema()
        assert set(schema.relation_names()) == {"friend", "dine", "cafe"}

    def test_access_schema_matches_paper(self):
        access = facebook.access_schema()
        by_name = {c.name: c for c in access}
        assert by_name["psi1"].bound == 5000
        assert by_name["psi2"].bound == 31
        assert by_name["psi3"].is_indexing
        assert by_name["psi4"].is_functional_dependency

    def test_generated_data_satisfies_constraints(self):
        for seed in (0, 1, 2):
            database = facebook.generate(scale=50, seed=seed)
            assert database.satisfies_schema(facebook.access_schema())

    def test_generation_deterministic(self):
        a = facebook.generate(scale=30, seed=5)
        b = facebook.generate(scale=30, seed=5)
        assert a.size == b.size

    def test_scale_controls_size(self):
        small = facebook.generate(scale=20, seed=0)
        large = facebook.generate(scale=100, seed=0)
        assert large.size > small.size


class TestPaperQueries:
    def test_coverage_statuses(self):
        access = facebook.access_schema()
        assert is_covered(facebook.query_q1(), access)
        assert is_covered(facebook.query_q3(), access)
        assert is_covered(facebook.query_q0_prime(), access)
        assert not is_covered(facebook.query_q2(), access)
        assert not is_covered(facebook.query_q0(), access)

    def test_q0_equivalent_to_q0_prime_on_data(self, fb_database):
        q0 = facebook.query_q0()
        q0p = facebook.query_q0_prime()
        assert evaluate(q0, fb_database).rows == evaluate(q0p, fb_database).rows

    def test_parameterized_queries(self, fb_database):
        """Changing the person/city parameters changes the query results sensibly."""
        everything = evaluate(facebook.query_q1(city="nyc"), fb_database).rows | evaluate(
            facebook.query_q1(city="boston"), fb_database
        ).rows
        assert evaluate(facebook.query_q1(city="nyc"), fb_database).rows <= everything

    def test_workload_spec(self):
        spec = facebook.WORKLOAD
        assert spec.name == "facebook"
        database = spec.database(scale=25, seed=1)
        assert database.size > 0
        assert len(spec.join_edges) >= 2
