"""Execution backends that run bounded evaluation on top of an actual DBMS."""

from .sqlite import SQLiteBackend

__all__ = ["SQLiteBackend"]
