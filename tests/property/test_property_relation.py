"""Property-based tests for the storage layer (set semantics, indexes)."""

from hypothesis import given, settings, strategies as st

from repro.core.access import AccessConstraint
from repro.core.schema import RelationSchema
from repro.storage.index import ConstraintIndex
from repro.storage.relation import RelationInstance

rows = st.tuples(
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=5),
    st.sampled_from(["x", "y", "z"]),
)
row_lists = st.lists(rows, max_size=40)


def make_relation(data):
    schema = RelationSchema("r", ["a", "b", "c"])
    return RelationInstance(schema, data)


class TestSetSemantics:
    @given(row_lists)
    @settings(max_examples=60, deadline=None)
    def test_no_duplicates_stored(self, data):
        relation = make_relation(data)
        assert len(relation) == len(set(data))
        assert set(relation.rows) == set(data)

    @given(row_lists, rows)
    @settings(max_examples=60, deadline=None)
    def test_insert_then_delete_roundtrip(self, data, extra):
        relation = make_relation(data)
        was_new = relation.insert(extra)
        assert extra in relation
        if was_new:
            assert relation.delete(extra)
            assert extra not in relation
            assert set(relation.rows) == set(data)

    @given(row_lists)
    @settings(max_examples=60, deadline=None)
    def test_projection_matches_python_set(self, data):
        relation = make_relation(data)
        assert relation.project(["a"]) == {(row[0],) for row in data}
        assert relation.project(["c", "a"]) == {(row[2], row[0]) for row in data}

    @given(row_lists)
    @settings(max_examples=60, deadline=None)
    def test_group_max_multiplicity_matches_bruteforce(self, data):
        relation = make_relation(data)
        groups = {}
        for a, b, c in set(data):
            groups.setdefault(a, set()).add((b,))
        expected = max((len(v) for v in groups.values()), default=0)
        assert relation.group_max_multiplicity(["a"], ["b"]) == expected


class TestConstraintIndexProperties:
    @given(row_lists)
    @settings(max_examples=60, deadline=None)
    def test_lookup_equals_filtered_projection(self, data):
        relation = make_relation(data)
        constraint = AccessConstraint.of("r", "a", "b", 1000)
        index = ConstraintIndex(constraint, relation)
        for key in {row[0] for row in data}:
            expected = {
                (row[0], row[1]) if index.columns == ("a", "b") else (row[1], row[0])
                for row in set(data)
                if row[0] == key
            }
            got = set(index.lookup((key,)))
            normalized = {
                (value[index.columns.index("a")], value[index.columns.index("b")])
                for value in got
            }
            assert normalized == {(row[0], row[1]) for row in set(data) if row[0] == key}

    @given(row_lists)
    @settings(max_examples=60, deadline=None)
    def test_index_size_bounded_by_relation(self, data):
        relation = make_relation(data)
        constraint = AccessConstraint.of("r", "a", ["b", "c"], 1000)
        index = ConstraintIndex(constraint, relation)
        assert index.size <= len(relation)
        assert index.entry_count <= len(relation)

    @given(row_lists, rows)
    @settings(max_examples=60, deadline=None)
    def test_incremental_insert_matches_rebuild(self, data, extra):
        relation = make_relation(data)
        constraint = AccessConstraint.of("r", "a", "c", 1000)
        index = ConstraintIndex(constraint, relation)
        if relation.insert(extra):
            index.add_row(extra)
        rebuilt = ConstraintIndex(constraint, relation)
        for key in {row[0] for row in relation.rows}:
            assert set(index.lookup((key,))) == set(rebuilt.lookup((key,)))
