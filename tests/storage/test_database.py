"""Unit tests for in-memory databases."""

import pytest

from repro.core.access import AccessConstraint, AccessSchema
from repro.core.errors import StorageError
from repro.storage.database import Database
from repro.workloads import facebook


class TestDatabaseBasics:
    def test_relations_created_from_schema(self, fb_schema):
        database = Database(fb_schema)
        assert set(database.relation_names()) == {"friend", "dine", "cafe"}
        assert database.size == 0

    def test_unknown_relation(self, fb_schema):
        database = Database(fb_schema)
        with pytest.raises(StorageError):
            database.relation("restaurant")

    def test_insert_and_size(self, fb_schema):
        database = Database(fb_schema)
        database.insert("friend", ("p0", "p1"))
        database.insert_many("cafe", [("c1", "nyc"), ("c2", "boston")])
        assert database.size == 3
        assert len(database) == 3
        assert database.cell_size == 2 + 2 * 2

    def test_delete(self, fb_schema):
        database = Database(fb_schema)
        database.insert("friend", ("p0", "p1"))
        assert database.delete("friend", ("p0", "p1"))
        assert database.size == 0

    def test_contains_and_iter(self, fb_database):
        assert "dine" in fb_database
        assert "missing" not in fb_database
        assert len(list(fb_database)) == 3


class TestConstraintSatisfaction:
    def test_generated_data_satisfies_a0(self, fb_database, fb_access):
        assert fb_database.satisfies_schema(fb_access)
        assert fb_database.violations(fb_access) == []

    def test_violation_detected(self, fb_schema):
        database = Database(fb_schema)
        constraint = AccessConstraint.of("friend", "pid", "fid", 2)
        database.insert_many("friend", [("p0", f"f{i}") for i in range(5)])
        assert not database.satisfies(constraint)
        schema = AccessSchema([constraint], schema=fb_schema)
        assert database.violations(schema) == [constraint]

    def test_empty_lhs_constraint(self, fb_schema):
        database = Database(fb_schema)
        database.insert_many("dine", [("p0", "c1", m, 2015) for m in ("jan", "feb", "mar")])
        months = AccessConstraint.of("dine", (), "month", 12)
        too_tight = AccessConstraint.of("dine", (), "month", 2)
        assert database.satisfies(months)
        assert not database.satisfies(too_tight)


class TestScaling:
    def test_scaled_reduces_size(self, fb_database):
        half = fb_database.scaled(0.5, seed=1)
        assert 0 < half.size < fb_database.size
        assert half.schema == fb_database.schema

    def test_scaled_preserves_constraints(self, fb_database, fb_access):
        """Dropping tuples can only shrink groups, so D' still satisfies A."""
        for factor in (0.25, 0.5):
            assert fb_database.scaled(factor, seed=3).satisfies_schema(fb_access)

    def test_scaled_is_deterministic(self, fb_database):
        a = fb_database.scaled(0.3, seed=9)
        b = fb_database.scaled(0.3, seed=9)
        assert a.size == b.size
        assert {r.schema.name: set(r.rows) for r in a} == {
            r.schema.name: set(r.rows) for r in b
        }

    def test_scale_one_returns_copy_with_same_rows(self, fb_database):
        copy = fb_database.scaled(1.0)
        assert copy.size == fb_database.size

    def test_invalid_factor(self, fb_database):
        with pytest.raises(StorageError):
            fb_database.scaled(0.0)
        with pytest.raises(StorageError):
            fb_database.scaled(1.5)


class TestPersistence:
    def test_directory_round_trip(self, fb_schema, tmp_path):
        database = Database(fb_schema)
        database.insert_many("cafe", [("c1", "nyc"), ("c2", "boston")])
        database.insert("friend", ("p0", "p1"))
        database.to_directory(tmp_path / "db")
        loaded = Database.from_directory(fb_schema, tmp_path / "db")
        assert loaded.size == database.size
        assert set(loaded.relation("cafe").rows) == set(database.relation("cafe").rows)

    def test_missing_files_are_tolerated(self, fb_schema, tmp_path):
        (tmp_path / "partial").mkdir()
        loaded = Database.from_directory(fb_schema, tmp_path / "partial")
        assert loaded.size == 0
