"""Small helpers for presenting experiment results as tables.

The benchmark harness prints the same rows/series the paper's figures plot;
these helpers keep the formatting consistent across experiments and make the
output easy to diff against EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence


def format_seconds(value: float) -> str:
    """Human-friendly rendering of a duration."""
    if value < 1e-3:
        return f"{value * 1e6:.0f}µs"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def format_ratio(value: float) -> str:
    """Render an access ratio ``P(D_Q)`` in scientific notation like the paper."""
    if value == 0:
        return "0"
    return f"{value:.2e}"


@dataclass
class ExperimentTable:
    """An ordered collection of result rows with uniform columns."""

    title: str
    columns: Sequence[str]
    rows: list[Mapping[str, object]] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        missing = [c for c in self.columns if c not in values]
        if missing:
            raise ValueError(f"row missing columns {missing}")
        self.rows.append(values)

    def column(self, name: str) -> list[object]:
        return [row[name] for row in self.rows]

    def render(self) -> str:
        """A fixed-width text table, suitable for stdout and EXPERIMENTS.md."""
        headers = list(self.columns)
        formatted_rows = [
            [self._format(row[column]) for column in headers] for row in self.rows
        ]
        widths = [
            max(len(header), *(len(row[i]) for row in formatted_rows)) if formatted_rows else len(header)
            for i, header in enumerate(headers)
        ]
        lines = [self.title]
        lines.append("  " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append("  " + "-+-".join("-" * w for w in widths))
        for row in formatted_rows:
            lines.append("  " + " | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    @staticmethod
    def _format(value: object) -> str:
        if isinstance(value, float):
            if 0 < abs(value) < 1e-3:
                return f"{value:.2e}"
            return f"{value:.4f}".rstrip("0").rstrip(".")
        return str(value)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
