"""Unit tests for approximate answers to non-covered queries."""

import pytest

from repro.core.approximate import ApproximateEvaluator, approximate_answer
from repro.core.query import Difference, Relation, Union, eq
from repro.evaluator.algebra import evaluate
from repro.workloads import facebook


@pytest.fixture
def evaluator(fb_database, fb_access, fb_indexes):
    return ApproximateEvaluator(fb_database, fb_access, fb_indexes)


class TestExactCases:
    def test_covered_query_is_exact(self, evaluator, fb_q1, fb_database):
        result = evaluator.evaluate(fb_q1)
        assert result.exact
        assert result.certain == result.possible == evaluate(fb_q1, fb_database).rows

    def test_rewritable_difference_is_exact(self, evaluator, fb_q0, fb_database):
        """Q0 is answered exactly through the guarded rewrite, not approximated."""
        result = evaluator.evaluate(fb_q0)
        assert result.exact
        assert result.certain == evaluate(fb_q0, fb_database).rows
        assert result.counter.scanned == 0


class TestApproximateCases:
    def test_uncovered_spc_gives_empty_lower_unknown_upper(self, evaluator, fb_q2):
        result = evaluator.evaluate(fb_q2)
        assert not result.exact
        assert result.certain == frozenset()
        assert result.possible is None
        assert result.precision_interval() == (0, None)

    def test_union_with_uncovered_branch_lower_bound_sound(
        self, evaluator, fb_q1, fb_q2, fb_database
    ):
        """Q1 ∪ Q2: certain answers are exactly Q1's (the covered branch)."""
        query = Union(fb_q1, fb_q2)
        result = evaluator.evaluate(query, allow_rewrite=False)
        truth = evaluate(query, fb_database).rows
        assert result.certain <= truth
        assert result.certain == evaluate(fb_q1, fb_database).rows
        assert result.possible is None
        assert result.counter.scanned == 0

    def test_difference_with_uncovered_right_upper_bound(
        self, evaluator, fb_q1, fb_q2, fb_database
    ):
        """Q1 − Q2 (without rewriting): possible answers are Q1's, certain is ∅."""
        query = Difference(fb_q1, fb_q2)
        result = evaluator.evaluate(query, allow_rewrite=False)
        truth = evaluate(query, fb_database).rows
        assert result.certain <= truth
        assert result.possible is not None
        assert truth <= result.possible
        assert result.possible == evaluate(fb_q1, fb_database).rows

    def test_difference_with_uncovered_left(self, evaluator, fb_q1, fb_q2, fb_database):
        """Q2 − Q1: nothing is certain and the upper bound is unknown."""
        query = Difference(fb_q2, fb_q1)
        result = evaluator.evaluate(query, allow_rewrite=False)
        truth = evaluate(query, fb_database).rows
        assert result.certain <= truth
        assert result.certain == frozenset()
        assert result.possible is None

    def test_nested_combination_soundness(self, evaluator, fb_database, fb_schema):
        """(Q1 ∪ Q2) − Q2': certain ⊆ truth ⊆ possible whenever bounds are known."""
        q1 = facebook.query_q1()
        q2 = facebook.query_q2()
        dine = Relation("dine_x", fb_schema["dine"].attributes, base="dine")
        q2b = dine.select(eq(dine["pid"], "p1")).project([dine["cid"]])
        query = Difference(Union(q1, q2), q2b)
        result = evaluator.evaluate(query, allow_rewrite=False)
        truth = evaluate(query, fb_database).rows
        assert result.certain <= truth
        if result.possible is not None:
            assert truth <= result.possible

    def test_subquery_status_reported(self, evaluator, fb_q1, fb_q2):
        result = evaluator.evaluate(Union(fb_q1, fb_q2), allow_rewrite=False)
        assert result.subquery_status is not None
        assert sorted(result.subquery_status.values()) == [False, True]


class TestConvenienceWrapper:
    def test_approximate_answer_builds_indexes(self, fb_database, fb_access, fb_q0):
        result = approximate_answer(fb_q0, fb_database, fb_access)
        assert result.exact
        assert result.certain == evaluate(fb_q0, fb_database).rows

    def test_access_stays_bounded(self, fb_database, fb_access, fb_indexes, fb_q1, fb_q2):
        """Approximation never scans; all access goes through the indexes."""
        result = approximate_answer(
            Union(fb_q1, fb_q2), fb_database, fb_access, fb_indexes
        )
        assert result.counter.scanned == 0
        assert result.counter.fetched > 0
