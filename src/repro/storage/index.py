"""Constraint indexes (Section 7, "Building indices I_A").

For each access constraint ``R(X → Y, N)`` the framework materializes the
partial table ``T_XY = π_{XY}(D_R)`` hashed on ``X``.  Given an ``X``-value,
the index returns the distinct ``XY``-values by accessing at most ``N``
tuples.  :class:`IndexSet` manages the indexes of a whole access schema,
checks that the data actually satisfies the constraints, and supports the
bounded incremental maintenance of Proposition 12.
"""

from __future__ import annotations

from itertools import chain
from typing import Iterable, Iterator, Mapping, Sequence

from ..core.access import AccessConstraint, AccessSchema
from ..core.errors import ConstraintViolation, StorageError
from .counters import AccessCounter
from .relation import RelationInstance, Row


class ConstraintIndex:
    """The hash index of one access constraint over one relation instance."""

    def __init__(self, constraint: AccessConstraint, relation: RelationInstance):
        if constraint.relation != relation.schema.name:
            raise StorageError(
                f"constraint {constraint} does not apply to relation {relation.schema.name!r}"
            )
        self.constraint = constraint
        self.relation_name = relation.schema.name
        self.lhs = tuple(sorted(constraint.lhs))
        self.rhs = tuple(sorted(constraint.rhs))
        self.columns = tuple(sorted(constraint.lhs | constraint.rhs))
        self._lhs_positions = relation.schema.positions(self.lhs)
        self._column_positions = relation.schema.positions(self.columns)
        #: key -> {projected XY-value -> number of base tuples projecting to it}.
        #: The reference counts make deletions O(1): a value is dropped exactly
        #: when its last witness tuple goes away, with no relation scan.
        self._entries: dict[Row, dict[Row, int]] = {}
        for row in relation:
            self._add_row(row)

    # -- maintenance ---------------------------------------------------------------
    def _key(self, row: Row) -> Row:
        return tuple(row[p] for p in self._lhs_positions)

    def _value(self, row: Row) -> Row:
        return tuple(row[p] for p in self._column_positions)

    def _add_row(self, row: Row) -> None:
        group = self._entries.setdefault(self._key(row), {})
        value = self._value(row)
        group[value] = group.get(value, 0) + 1

    def add_row(self, row: Row) -> None:
        """Reflect an inserted base-relation tuple in the index (O(1)).

        Callers must only report *new* base tuples (set semantics): reporting
        the same tuple twice would double-count its witness.
        """
        self._add_row(row)

    def remove_row(self, row: Row, relation: RelationInstance | None = None) -> None:
        """Reflect a deleted base-relation tuple in the index (O(1)).

        The projected ``XY``-value is dropped only when its reference count
        hits zero, i.e. no remaining tuple of the relation still projects to
        it.  ``relation`` is accepted for backward compatibility but no longer
        needed: the counts replace the witness scan.
        """
        key = self._key(row)
        group = self._entries.get(key)
        if not group:
            return
        value = self._value(row)
        count = group.get(value)
        if count is None:
            return
        if count > 1:
            group[value] = count - 1
            return
        del group[value]
        if not group:
            del self._entries[key]

    # -- lookups --------------------------------------------------------------------
    def lookup(self, key: Sequence, counter: AccessCounter | None = None) -> tuple[Row, ...]:
        """``D_XY(X = key)``: distinct ``XY``-values for a given ``X``-value.

        Each returned tuple is aligned with :attr:`columns`.  At most ``N``
        tuples are accessed when the data satisfies the constraint; the access
        is recorded on ``counter`` if provided.
        """
        values = self._entries.get(tuple(key))
        result = tuple(values) if values else ()
        if counter is not None:
            counter.record_fetch(self.relation_name, len(result))
        return result

    def lookup_many(
        self, keys: Iterable[Row], counter: AccessCounter | None = None
    ) -> list[Row]:
        """Concatenated :meth:`lookup` results for many ``X``-values.

        Accounting is identical in aggregate (one probe per key, every
        returned tuple counted), but the group gather runs at C speed —
        this is the batch entry point used by the columnar executor's
        fetch kernel.  Keys must already be tuples.
        """
        groups = list(map(self._entries.get, keys))
        rows = list(chain.from_iterable(filter(None, groups)))
        if counter is not None:
            counter.record_fetch_many(self.relation_name, len(groups), len(rows))
        return rows

    def keys(self) -> Iterator[Row]:
        return iter(self._entries)

    # -- size and consistency -----------------------------------------------------------
    @property
    def entry_count(self) -> int:
        """Number of distinct ``X``-values indexed."""
        return len(self._entries)

    @property
    def size(self) -> int:
        """Number of ``XY``-tuples stored (the index footprint used in Exp-1(IV))."""
        return sum(len(values) for values in self._entries.values())

    @property
    def cell_size(self) -> int:
        """Number of value cells stored (tuples × width), comparable to byte footprints."""
        return self.size * len(self.columns)

    def max_group_size(self) -> int:
        if not self._entries:
            return 0
        return max(len(values) for values in self._entries.values())

    def check(self) -> None:
        """Raise :class:`ConstraintViolation` if some group exceeds the bound ``N``."""
        rhs_positions = tuple(self.columns.index(a) for a in self.rhs)
        for key, values in self._entries.items():
            distinct_rhs = {tuple(v[p] for p in rhs_positions) for v in values}
            if len(distinct_rhs) > self.constraint.bound:
                raise ConstraintViolation(self.constraint, key, len(distinct_rhs))


class IndexSet:
    """All constraint indexes of an access schema over a database.

    Construction cost is ``O(||A|| · |D|)`` and the total size is at most
    ``O(||A|| · |D|)``, as stated in Section 7.  Lookups share one
    :class:`AccessCounter` unless the caller supplies its own.
    """

    def __init__(self, counter: AccessCounter | None = None):
        self._indexes: dict[AccessConstraint, ConstraintIndex] = {}
        #: (relation, lhs, rhs) -> index, for O(1) shape lookups (first wins)
        self._by_shape: dict[tuple[str, frozenset, frozenset], ConstraintIndex] = {}
        #: relation -> its indexes, for O(per-relation) incremental maintenance
        self._by_relation: dict[str, list[ConstraintIndex]] = {}
        self.counter = counter if counter is not None else AccessCounter()

    def _register(self, constraint: AccessConstraint, index: ConstraintIndex) -> None:
        self._indexes[constraint] = index
        self._by_shape.setdefault(
            (constraint.relation, constraint.lhs, constraint.rhs), index
        )
        self._by_relation.setdefault(constraint.relation, []).append(index)

    @classmethod
    def build(
        cls,
        database: "Database",
        access_schema: AccessSchema,
        *,
        check: bool = True,
        counter: AccessCounter | None = None,
    ) -> "IndexSet":
        """Build indexes for every constraint of ``access_schema`` over ``database``."""
        from .database import Database  # local import to avoid a cycle

        if not isinstance(database, Database):  # pragma: no cover - defensive
            raise StorageError("IndexSet.build expects a Database")
        index_set = cls(counter=counter)
        for constraint in access_schema:
            relation = database.relation(constraint.relation)
            index = ConstraintIndex(constraint, relation)
            if check:
                index.check()
            index_set._register(constraint, index)
        return index_set

    # -- protocol -------------------------------------------------------------------
    def __contains__(self, constraint: AccessConstraint) -> bool:
        return constraint in self._indexes

    def __len__(self) -> int:
        return len(self._indexes)

    def __iter__(self) -> Iterator[ConstraintIndex]:
        return iter(self._indexes.values())

    def index_for(self, constraint: AccessConstraint) -> ConstraintIndex:
        try:
            return self._indexes[constraint]
        except KeyError:
            raise StorageError(f"no index built for constraint {constraint}") from None

    def get(self, constraint: AccessConstraint) -> ConstraintIndex | None:
        return self._indexes.get(constraint)

    def find(
        self, relation: str, lhs: Iterable[str], rhs: Iterable[str]
    ) -> ConstraintIndex | None:
        """Find an index matching a (possibly actualized) constraint shape.

        Actualized constraints keep the bound and attribute sets of the base
        constraint but rename the relation; this lookup lets the executor map
        them back to the physical index built on the base relation.  The
        lookup is a single dict probe (when several constraints share a shape,
        the first one registered wins, matching the historical scan order).
        """
        return self._by_shape.get((relation, frozenset(lhs), frozenset(rhs)))

    # -- size ------------------------------------------------------------------------
    @property
    def total_size(self) -> int:
        """Total number of tuples across all index partial tables."""
        return sum(index.size for index in self._indexes.values())

    @property
    def total_cell_size(self) -> int:
        """Total number of value cells across all index partial tables."""
        return sum(index.cell_size for index in self._indexes.values())

    def size_report(self) -> dict[str, int]:
        return {str(constraint): index.size for constraint, index in self._indexes.items()}

    # -- incremental maintenance (Proposition 12) ----------------------------------------
    def apply_insert(self, relation: str, row: Row) -> None:
        """Update all indexes of ``relation`` after a tuple insertion (O(N_A) per tuple)."""
        for index in self._by_relation.get(relation, ()):
            index.add_row(row)

    def apply_delete(self, relation: str, row: Row, instance: RelationInstance | None = None) -> None:
        """Update all indexes of ``relation`` after a tuple deletion (O(1) per index)."""
        for index in self._by_relation.get(relation, ()):
            index.remove_row(row, instance)
