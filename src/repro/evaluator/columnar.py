"""Vectorized columnar execution of bounded plans (the cold-path executor).

The row executor (:mod:`repro.evaluator.executor`) interprets every step
tuple-at-a-time over set intermediates: each fetched row is hashed into a
set, each selection calls a compiled matcher per row, each projection builds
a fresh tuple per row.  That is the dominant cost of a *cold* execution —
a result-cache miss that has to actually run the plan.

This module lowers the same plans to **batch-wise kernels** over a columnar
intermediate, :class:`ColumnBatch`:

* **Column arrays** — a step's output is a tuple of per-column Python lists
  plus an explicit row count, so projection and rename are column slicing
  (zero row copies) and transposition happens at C speed via ``zip``.
* **Set semantics without per-row set building** — batches whose
  construction guarantees distinctness (fetches: distinct keys yield
  disjoint distinct index tuples; selections and joins of distinct
  inputs) carry ``distinct=True`` and skip dedup entirely.  Only the
  duplicate-*creating* ops — narrowing projections and unions — dedup,
  with one C-speed ``zip`` transpose into ``dict.fromkeys`` instead of
  the row executor's per-row tuple hashing, keeping every intermediate
  exactly as large as the row executor's.
* **Vectorized selection** — predicates evaluate column-at-a-time into
  boolean masks combined with :func:`itertools.compress`; no per-row dict
  or tuple construction, no per-row matcher call.
* **Columnar hash join** — build/probe keys are materialized with one
  ``zip`` per side, the probe emits row *indices*, and output columns are
  gathered once per column.
* **Dictionary encoding** — string columns of fetch results are encoded as
  integer codes against per-index persistent :class:`Dictionary` instances
  (amortized across the repeated executions of a serving tier).  Equality
  selections then compare small ints — and a constant absent from the
  dictionary short-circuits to an empty batch without scanning — while
  joins whose two key columns share a dictionary probe on codes directly.
  Kernels that need real values (ordering comparisons, the final freeze)
  decode lazily.

The compiler mirrors :meth:`PlanExecutor._compile` step for step and is
invoked through the same :class:`~repro.evaluator.executor.CompiledPlan`
seam; the executor chooses the mode per plan (see
:func:`repro.core.optimizer.choose_executor_mode`).
"""

from __future__ import annotations

import operator
from itertools import chain, compress, product as iter_product, repeat
from typing import Callable, Mapping, Sequence

from ..core.errors import PlanError
from ..core.plan import (
    BoundedPlan,
    ColumnPredicate,
    ColumnRef,
    ConstOp,
    DifferenceOp,
    FetchOp,
    HashJoinOp,
    IntersectOp,
    PlanStep,
    ProductOp,
    ProjectOp,
    RenameOp,
    SelectOp,
    UnionOp,
    UnitOp,
)
from ..storage.counters import AccessCounter
from .algebra import _compare

Row = tuple

#: sentinel returned by a mask builder when no row can possibly match
_NO_MATCH = object()


class Dictionary:
    """An append-only value ↔ code mapping for one string column.

    Codes are dense ints assigned in first-seen order, so decoding is a list
    index.  Dictionaries are *persistent*: the executor keeps one per
    (constraint index, column) pair, so repeated executions re-encode against
    an already-populated table and the amortized cost per cell is one dict
    probe.  Encoding is injective, hence code equality is value equality —
    the property the equality-select and code-join kernels rely on.
    """

    __slots__ = ("codes", "values", "_translations")

    def __init__(self) -> None:
        self.codes: dict[str, int] = {}
        self.values: list[str] = []
        #: id(other Dictionary) -> (code table, len(self) and len(other) at build)
        self._translations: dict[int, tuple[list, int, int]] = {}

    def __len__(self) -> int:
        return len(self.values)

    def encode_column(self, column: Sequence) -> list[int] | None:
        """Encode a column of strings, growing the dictionary as needed.

        Returns ``None`` (leaving the column unencoded) when a non-string
        value shows up — mixed-type columns stay plain.
        """
        codes = self.codes
        values = self.values
        # Steady-state fast path: every value already has a code, so the
        # whole encode is one C-level map.  (None is never a stored value —
        # only str columns are encoded — so it reliably marks misses.)
        out = list(map(codes.get, column))
        if None not in out:
            return out
        for position, code in enumerate(out):
            if code is None:
                value = column[position]
                code = codes.get(value)
                if code is None:
                    if not isinstance(value, str):
                        return None
                    code = len(values)
                    codes[value] = code
                    values.append(value)
                out[position] = code
        return out

    def decode_column(self, column: Sequence[int]) -> list[str]:
        # map(list.__getitem__) runs the decode loop in C.
        return list(map(self.values.__getitem__, column))

    def translate_column(self, column: Sequence[int], other: "Dictionary") -> list:
        """Re-encode codes of this dictionary into ``other``'s code space.

        Codes absent from ``other`` map to ``None`` (never a valid code, so
        a translated key can only match real ``other`` codes).  The
        translation table is cached per target dictionary and rebuilt only
        after either dictionary has grown — amortized over the serving
        tier's repeated executions, translation is one C-level ``map``.
        """
        cached = self._translations.get(id(other))
        if cached is None or cached[1] != len(self.values) or cached[2] != len(other.values):
            other_codes = other.codes
            table = [other_codes.get(value) for value in self.values]
            self._translations[id(other)] = (table, len(self.values), len(other.values))
        else:
            table = cached[0]
        return list(map(table.__getitem__, column))


class ColumnBatch:
    """A step result as per-column arrays: the columnar intermediate.

    ``data`` holds one list per column, all of ``length`` elements; a column
    with an entry in ``encodings`` stores :class:`Dictionary` codes instead
    of raw values.  ``distinct`` records whether the rows are known to be
    duplicate-free (construction-time knowledge, e.g. fetch output), letting
    set-operation kernels skip redundant dedups.  Column lists are treated
    as immutable — kernels share them freely across batches and never
    mutate one in place.
    """

    __slots__ = ("columns", "data", "encodings", "length", "distinct")

    def __init__(
        self,
        columns: tuple[str, ...],
        data: tuple[list, ...],
        encodings: tuple[Dictionary | None, ...],
        length: int,
        distinct: bool,
    ):
        self.columns = columns
        self.data = data
        self.encodings = encodings
        self.length = length
        self.distinct = distinct

    # -- construction ---------------------------------------------------------
    @classmethod
    def empty(cls, columns: tuple[str, ...]) -> "ColumnBatch":
        width = len(columns)
        return cls(columns, tuple([] for _ in range(width)), (None,) * width, 0, True)

    @classmethod
    def from_rows(
        cls, columns: tuple[str, ...], rows: Sequence[Row], *, distinct: bool = False
    ) -> "ColumnBatch":
        """Transpose row tuples into a batch (one C-speed ``zip``)."""
        if not rows:
            return cls.empty(columns)
        width = len(columns)
        if width == 0:
            return cls(columns, (), (), len(rows), distinct)
        data = tuple(list(column) for column in zip(*rows))
        return cls(columns, data, (None,) * width, len(rows), distinct)

    # -- protocol -------------------------------------------------------------
    def __len__(self) -> int:
        return self.length

    def decoded_column(self, position: int) -> list:
        """The raw values of one column (decoding codes when necessary)."""
        encoding = self.encodings[position]
        column = self.data[position]
        return encoding.decode_column(column) if encoding is not None else column

    def row_tuples(self, *, decode: bool = True) -> list[Row]:
        """The batch as row tuples; ``decode=False`` keeps dictionary codes."""
        if not self.columns:
            return [()] * self.length
        if decode and any(encoding is not None for encoding in self.encodings):
            columns = [
                encoding.decode_column(column) if encoding is not None else column
                for encoding, column in zip(self.encodings, self.data)
            ]
            return list(zip(*columns))
        return list(zip(*self.data))

    def to_frozenset(self) -> frozenset[Row]:
        """Freeze back to the row-set contract (the only mandatory dedup)."""
        return frozenset(self.row_tuples())


class ProductView:
    """A Cartesian product that is never materialized unless someone insists.

    Bounded plans lean heavily on the *candidate-verification* pattern: a
    cross product of small candidate domains is fetched against and then
    verified with a join over **all** of its columns.  Materializing that
    product costs O(∏ factor sizes × width) cells per execution even though
    its consumers only ever need the per-factor columns:

    * a **fetch** keyed on product columns needs the distinct key
      combinations, which for independent factors is just the cross product
      of small per-factor key sets (:meth:`key_tuples`);
    * a **verification join** whose pairs cover every product column is a
      per-factor semijoin — membership masks against per-factor sets — and
      its output's build columns are copies of the probe columns they were
      equated with (see ``ColumnarCompiler._compile_hash_join``).

    ``factors`` are ordinary (distinct) :class:`ColumnBatch` instances whose
    columns concatenate to ``columns``.  Renames re-label the view without
    touching the factors.  Consumers with no virtual path call
    :meth:`materialize` (cached).
    """

    __slots__ = ("columns", "factors", "length", "distinct", "_materialized")

    def __init__(self, columns: tuple[str, ...], factors: tuple[ColumnBatch, ...]):
        self.columns = columns
        self.factors = factors
        length = 1
        for factor in factors:
            length *= factor.length
        self.length = length
        self.distinct = all(factor.distinct for factor in factors)
        self._materialized: ColumnBatch | None = None

    def __len__(self) -> int:
        return self.length

    def key_tuples(self, factor_positions: Sequence[tuple[int, tuple[int, ...]]],
                   reorder: tuple[int, ...]) -> list[Row]:
        """Distinct tuples over selected columns, without expanding the product.

        ``factor_positions`` lists ``(factor index, local column positions)``
        per participating factor; ``reorder`` maps the concatenated
        per-factor value order back to the requested column order.  The
        result enumerates ∏ per-factor distinct combinations — the true
        number of distinct keys — instead of scanning ∏ factor sizes rows.
        """
        factor_sets = []
        for fi, locals_ in factor_positions:
            factor = self.factors[fi]
            if len(locals_) == 1:
                values = set(factor.decoded_column(locals_[0]))
                factor_sets.append([(value,) for value in values])
            else:
                factor_sets.append(
                    list(set(zip(*(factor.decoded_column(p) for p in locals_))))
                )
        keys: list[Row] = []
        append = keys.append
        for combo in iter_product(*factor_sets):
            flat = tuple(chain.from_iterable(combo))
            append(tuple(flat[p] for p in reorder))
        return keys

    def materialize(self) -> ColumnBatch:
        """Expand to a plain :class:`ColumnBatch` (cached per execution)."""
        batch = self._materialized
        if batch is not None:
            return batch
        if self.length == 0:
            batch = ColumnBatch.empty(self.columns)
        else:
            data: list[list] = []
            encodings: list[Dictionary | None] = []
            tile = 1  # rows contributed by factors to the left
            lengths = [factor.length for factor in self.factors]
            for index, factor in enumerate(self.factors):
                inner = 1  # repeats per element: product of lengths to the right
                for below in lengths[index + 1:]:
                    inner *= below
                for position, column in enumerate(factor.data):
                    if inner > 1:
                        column = list(
                            chain.from_iterable(map(repeat, column, repeat(inner)))
                        )
                    else:
                        column = list(column)
                    if tile > 1:
                        column = column * tile
                    data.append(column)
                    encodings.append(factor.encodings[position])
                tile *= factor.length
            batch = ColumnBatch(
                self.columns, tuple(data), tuple(encodings), self.length, self.distinct
            )
        self._materialized = batch
        return batch

    def to_frozenset(self) -> frozenset[Row]:
        return self.materialize().to_frozenset()


def _as_batch(value) -> ColumnBatch:
    """A plain batch for kernels with no virtual-product path."""
    return value.materialize() if type(value) is ProductView else value


#: a columnar kernel: (environment of prior batches, access counter) -> batch
ColumnKernel = Callable[[list, AccessCounter], ColumnBatch]


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------

def _column_positions(columns: Sequence[str]) -> dict[str, int]:
    positions: dict[str, int] = {}
    for index, column in enumerate(columns):
        positions.setdefault(column, index)
    return positions


def _position_of(positions: Mapping[str, int], column: str, step: PlanStep) -> int:
    try:
        return positions[column]
    except KeyError:
        raise PlanError(
            f"step T{step.id} references missing column {column!r}; "
            f"available: {sorted(positions)}"
        ) from None


def _resolve_predicates(
    predicates: Sequence[ColumnPredicate], columns: Sequence[str], step: PlanStep
) -> tuple[tuple[int, str, object, int | None], ...]:
    positions = _column_positions(columns)
    resolved: list[tuple[int, str, object, int | None]] = []
    for predicate in predicates:
        left = _position_of(positions, predicate.left, step)
        if isinstance(predicate.right, ColumnRef):
            right = _position_of(positions, predicate.right.column, step)
            resolved.append((left, predicate.op, None, right))
        else:
            resolved.append((left, predicate.op, predicate.right, None))
    return tuple(resolved)


#: comparison ops as C-level callables for map()-vectorized masks
_OPERATORS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _predicate_mask(
    batch: ColumnBatch, left: int, op: str, constant: object, right: int | None
):
    """One predicate, vectorized: a bool list, ``None`` (all rows pass), or
    :data:`_NO_MATCH` (no row can pass — lets callers short-circuit).

    Masks are built with ``map`` over C-level :mod:`operator` callables —
    the per-element comparison loop never enters the interpreter."""
    compare = _OPERATORS[op]
    if right is None:
        if op == "=" or op == "!=":
            encoding = batch.encodings[left]
            column = batch.data[left]
            if encoding is not None:
                code = encoding.codes.get(constant)
                if code is None:
                    # The dictionary holds every value of this column, so an
                    # absent constant matches nothing — no scan needed.
                    return _NO_MATCH if op == "=" else None
                constant = code
            return list(map(compare, column, repeat(constant)))
        values = batch.decoded_column(left)
        try:
            return list(map(compare, values, repeat(constant)))
        except TypeError:
            # Mixed/incomparable types somewhere in the column: fall back to
            # the row evaluator's per-value semantics (non-matching).
            return [_compare(value, op, constant) for value in values]
    if (op == "=" or op == "!=") and batch.encodings[left] is batch.encodings[right]:
        left_values, right_values = batch.data[left], batch.data[right]
    else:
        left_values = batch.decoded_column(left)
        right_values = batch.decoded_column(right)
    try:
        return list(map(compare, left_values, right_values))
    except TypeError:
        return [
            _compare(a, op, b) for a, b in zip(left_values, right_values)
        ]


def _apply_predicates(
    batch: ColumnBatch, resolved: tuple[tuple[int, str, object, int | None], ...]
) -> ColumnBatch:
    """Filter a batch by a conjunction of vectorized predicates."""
    if batch.length == 0:
        return batch
    mask: list | None = None
    for left, op, constant, right in resolved:
        part = _predicate_mask(batch, left, op, constant, right)
        if part is None:
            continue
        if part is _NO_MATCH:
            return ColumnBatch.empty(batch.columns)
        mask = part if mask is None else list(map(operator.and_, mask, part))
    if mask is None:
        return batch
    kept = sum(mask)
    if kept == batch.length:
        return batch
    if kept == 0:
        return ColumnBatch.empty(batch.columns)
    data = tuple(list(compress(column, mask)) for column in batch.data)
    return ColumnBatch(batch.columns, data, batch.encodings, kept, batch.distinct)


def _factor_grouping(
    widths: Sequence[int], key_positions: Sequence[int]
) -> tuple[tuple[tuple[int, tuple[int, ...]], ...], tuple[int, ...]]:
    """Map view-space column positions onto per-factor local positions.

    Returns ``(factor_positions, reorder)`` as consumed by
    :meth:`ProductView.key_tuples`: which factors participate (with their
    local column positions) and the permutation taking the concatenated
    per-factor value order back to ``key_positions`` order.
    """
    starts = []
    start = 0
    for width in widths:
        starts.append(start)
        start += width
    groups: dict[int, list[tuple[int, int]]] = {}
    for orig, position in enumerate(key_positions):
        for fi in range(len(widths) - 1, -1, -1):
            if position >= starts[fi] and position < starts[fi] + widths[fi]:
                groups.setdefault(fi, []).append((orig, position - starts[fi]))
                break
        else:
            raise PlanError(f"column position {position} outside product factors")
    factor_positions = []
    flat_orig: list[int] = []
    for fi in sorted(groups):
        entries = groups[fi]
        factor_positions.append((fi, tuple(local for _, local in entries)))
        flat_orig.extend(orig for orig, _ in entries)
    reorder = tuple(flat_orig.index(i) for i in range(len(key_positions)))
    return tuple(factor_positions), reorder


def _dedupe(batch: ColumnBatch) -> ColumnBatch:
    """Drop duplicate rows (one transpose + ``dict.fromkeys``).

    Operates on stored (possibly dictionary-coded) cells: encoding is
    injective per column, so code-tuple equality is value-tuple equality.
    Keeping intermediates distinct here — exactly where the row executor's
    set semantics would collapse them — prevents duplicates from
    multiplying through downstream joins and products.
    """
    if batch.distinct or batch.length <= 1:
        if not batch.distinct:
            return ColumnBatch(
                batch.columns, batch.data, batch.encodings, batch.length, True
            )
        return batch
    if not batch.columns:
        return ColumnBatch(batch.columns, (), (), 1, True)
    unique = dict.fromkeys(zip(*batch.data))
    if len(unique) == batch.length:
        return ColumnBatch(
            batch.columns, batch.data, batch.encodings, batch.length, True
        )
    data = tuple(list(column) for column in zip(*unique))
    return ColumnBatch(batch.columns, data, batch.encodings, len(unique), True)


class FetchEncoder:
    """Dictionary-encodes the string columns of one fetch step's output.

    Column eligibility is sniffed from the first batch and memoized;
    dictionaries are shared per (index, column) via the executor's
    persistent store, so the serving tier's repeated executions keep
    re-using the same code assignments.
    """

    def __init__(self, dictionaries: dict[int, Dictionary]):
        #: column position -> Dictionary, owned by the executor per index
        self._dictionaries = dictionaries
        self._eligible: dict[int, bool] = {}

    def __call__(self, batch: ColumnBatch) -> ColumnBatch:
        if batch.length == 0:
            return batch
        data = list(batch.data)
        encodings = list(batch.encodings)
        encoded = False
        for position, column in enumerate(data):
            eligible = self._eligible.get(position)
            if eligible is False:
                continue
            if eligible is None:
                eligible = isinstance(column[0], str)
                self._eligible[position] = eligible
                if not eligible:
                    continue
            dictionary = self._dictionaries.get(position)
            if dictionary is None:
                dictionary = self._dictionaries[position] = Dictionary()
            codes = dictionary.encode_column(column)
            if codes is None:  # mixed types discovered mid-column
                self._eligible[position] = False
                continue
            data[position] = codes
            encodings[position] = dictionary
            encoded = True
        if not encoded:
            return batch
        return ColumnBatch(
            batch.columns, tuple(data), tuple(encodings), batch.length, batch.distinct
        )


# ---------------------------------------------------------------------------
# The compiler
# ---------------------------------------------------------------------------

class ColumnarCompiler:
    """Lowers a :class:`BoundedPlan` to columnar kernels.

    ``resolve_index`` maps a fetch constraint to its
    :class:`~repro.storage.index.ConstraintIndex` (the executor's
    occurrence-aware resolution); ``encoder_factory`` returns the
    :class:`FetchEncoder` for an index, or ``None`` to disable dictionary
    encoding.
    """

    def __init__(
        self,
        plan: BoundedPlan,
        resolve_index: Callable,
        encoder_factory: Callable | None = None,
    ):
        self.plan = plan
        self._resolve_index = resolve_index
        self._encoder_factory = encoder_factory
        #: step id -> per-factor column widths, for steps that yield a
        #: ProductView at runtime (products and renames of products)
        self._factor_widths: dict[int, tuple[int, ...]] = {}

    def compile(self) -> tuple[tuple[ColumnKernel, ...], tuple[tuple[str, ...], ...]]:
        kernels: list[ColumnKernel] = []
        columns: list[tuple[str, ...]] = []
        for position, step in enumerate(self.plan.steps):
            if step.id != position:
                raise PlanError(
                    f"plan steps are not densely numbered: T{step.id} at position {position}"
                )
            kernel, step_columns = self._compile_step(step, columns)
            kernels.append(kernel)
            columns.append(step_columns)
        if self.plan.output < 0 or self.plan.output >= len(kernels):
            raise PlanError(f"output step T{self.plan.output} does not exist")
        return tuple(kernels), tuple(columns)

    # -- per-operator lowering -------------------------------------------------
    def _compile_step(
        self, step: PlanStep, columns: list[tuple[str, ...]]
    ) -> tuple[ColumnKernel, tuple[str, ...]]:
        op = step.op
        if isinstance(op, ConstOp):
            batch = ColumnBatch((op.column,), ([op.value],), (None,), 1, True)
            return (lambda env, counter, _b=batch: _b), (op.column,)
        if isinstance(op, UnitOp):
            batch = ColumnBatch((), (), (), 1, True)
            return (lambda env, counter, _b=batch: _b), ()
        if isinstance(op, FetchOp):
            return self._compile_fetch(step, columns[op.inputs[0]])
        if isinstance(op, SelectOp):
            source = op.inputs[0]
            resolved = _resolve_predicates(op.predicates, columns[source], step)

            def select_kernel(env, counter, _src=source, _preds=resolved):
                return _apply_predicates(_as_batch(env[_src]), _preds)

            return select_kernel, columns[source]
        if isinstance(op, ProjectOp):
            return self._compile_project(step, columns[op.inputs[0]])
        if isinstance(op, RenameOp):
            source = op.inputs[0]
            renamed = tuple(op.mapping.get(c, c) for c in columns[source])
            if source in self._factor_widths:
                # Renaming a virtual product re-labels the view, keeping it
                # virtual for the verification join downstream.
                self._factor_widths[step.id] = self._factor_widths[source]

                def rename_view_kernel(env, counter, _src=source, _cols=renamed):
                    view = env[_src]
                    if type(view) is not ProductView:
                        batch = view
                        return ColumnBatch(
                            _cols,
                            batch.data,
                            batch.encodings,
                            batch.length,
                            batch.distinct,
                        )
                    return ProductView(_cols, view.factors)

                return rename_view_kernel, renamed

            def rename_kernel(env, counter, _src=source, _cols=renamed):
                batch = _as_batch(env[_src])
                return ColumnBatch(
                    _cols, batch.data, batch.encodings, batch.length, batch.distinct
                )

            return rename_kernel, renamed
        if isinstance(op, ProductOp):
            return self._compile_product(step, columns)
        if isinstance(op, HashJoinOp):
            return self._compile_hash_join(step, columns)
        if isinstance(op, (UnionOp, DifferenceOp, IntersectOp)):
            return self._compile_set_op(step, columns)
        raise PlanError(f"unknown plan operator {type(op).__name__} in step T{step.id}")

    def _compile_fetch(
        self, step: PlanStep, source_columns: tuple[str, ...]
    ) -> tuple[ColumnKernel, tuple[str, ...]]:
        op: FetchOp = step.op  # type: ignore[assignment]
        index = self._resolve_index(op.constraint)
        positions = _column_positions(source_columns)
        key_positions = tuple(_position_of(positions, c, step) for c in op.key_columns)
        source = op.inputs[0]
        out_columns = step.columns
        encoder = (
            self._encoder_factory(index) if self._encoder_factory is not None else None
        )
        widths = self._factor_widths.get(source)
        if widths is not None and key_positions:
            # Source is a virtual product: enumerate the distinct key cross
            # product from the (small) factors instead of scanning the
            # expanded rows.
            grouping = _factor_grouping(widths, key_positions)

            def fetch_view_kernel(
                env,
                counter,
                _src=source,
                _grouping=grouping,
                _kp=key_positions,
                _lookup_many=index.lookup_many,
                _out=out_columns,
                _encode=encoder,
            ):
                view = env[_src]
                if view.length == 0:
                    return ColumnBatch.empty(_out)
                if type(view) is not ProductView:
                    keys = set(zip(*(view.decoded_column(p) for p in _kp)))
                else:
                    keys = view.key_tuples(*_grouping)
                rows = _lookup_many(keys, counter)
                fetched = ColumnBatch.from_rows(_out, rows, distinct=True)
                return _encode(fetched) if _encode is not None else fetched

            return fetch_view_kernel, out_columns

        def fetch_kernel(
            env,
            counter,
            _src=source,
            _kp=key_positions,
            _lookup_many=index.lookup_many,
            _out=out_columns,
            _encode=encoder,
        ):
            batch: ColumnBatch = env[_src]
            if batch.length == 0:
                return ColumnBatch.empty(_out)
            if not _kp:
                keys: Sequence[Row] = ((),)
            elif len(_kp) == 1:
                keys = set(zip(batch.decoded_column(_kp[0])))
            else:
                keys = set(zip(*(batch.decoded_column(p) for p in _kp)))
            rows = _lookup_many(keys, counter)
            # Distinct keys fetch disjoint groups of distinct index tuples
            # (every tuple embeds its key), so the batch is distinct as built.
            fetched = ColumnBatch.from_rows(_out, rows, distinct=True)
            return _encode(fetched) if _encode is not None else fetched

        return fetch_kernel, out_columns

    def _compile_project(
        self, step: PlanStep, source_columns: tuple[str, ...]
    ) -> tuple[ColumnKernel, tuple[str, ...]]:
        op: ProjectOp = step.op  # type: ignore[assignment]
        positions_by_name = _column_positions(source_columns)
        positions = tuple(_position_of(positions_by_name, c, step) for c in op.columns)
        names = tuple(op.output_names if op.output_names is not None else op.columns)
        source = op.inputs[0]
        # Distinctness survives permutations of the full column set; a
        # narrowing projection may collapse rows and must dedup so that
        # duplicates cannot multiply through downstream joins/products.
        keeps_distinct = (
            len(positions) == len(source_columns)
            and set(positions) == set(range(len(source_columns)))
        )

        def project_kernel(
            env, counter, _src=source, _ps=positions, _names=names, _keep=keeps_distinct
        ):
            batch: ColumnBatch = _as_batch(env[_src])
            data = tuple(batch.data[p] for p in _ps)
            encodings = tuple(batch.encodings[p] for p in _ps)
            projected = ColumnBatch(
                _names, data, encodings, batch.length, batch.distinct and _keep
            )
            return projected if _keep else _dedupe(projected)

        return project_kernel, names

    def _compile_product(
        self, step: PlanStep, columns: list[tuple[str, ...]]
    ) -> tuple[ColumnKernel, tuple[str, ...]]:
        op: ProductOp = step.op  # type: ignore[assignment]
        left, right = op.inputs
        out_columns = columns[left] + columns[right]
        left_widths = self._factor_widths.get(left, (len(columns[left]),))
        right_widths = self._factor_widths.get(right, (len(columns[right]),))
        self._factor_widths[step.id] = left_widths + right_widths

        def product_kernel(env, counter, _l=left, _r=right, _out=out_columns):
            lb = env[_l]
            rb = env[_r]
            left_factors = lb.factors if type(lb) is ProductView else (lb,)
            right_factors = rb.factors if type(rb) is ProductView else (rb,)
            return ProductView(_out, left_factors + right_factors)

        return product_kernel, out_columns

    def _compile_hash_join(
        self, step: PlanStep, columns: list[tuple[str, ...]]
    ) -> tuple[ColumnKernel, tuple[str, ...]]:
        op: HashJoinOp = step.op  # type: ignore[assignment]
        left, right = op.inputs
        left_columns, right_columns = columns[left], columns[right]
        left_positions = _column_positions(left_columns)
        right_positions = _column_positions(right_columns)
        probe_positions = tuple(
            _position_of(left_positions, l, step) for l, _ in op.pairs
        )
        build_positions = tuple(
            _position_of(right_positions, r, step) for _, r in op.pairs
        )
        out_columns = left_columns + right_columns
        residual = (
            _resolve_predicates(op.residual, out_columns, step) if op.residual else ()
        )
        widths = self._factor_widths.get(right)
        if widths is not None and set(build_positions) == set(
            range(len(right_columns))
        ):
            # Verification join over a virtual product: the pairs equate
            # EVERY build column with a probe column, so a matching build
            # row is fully determined by the probe row — the join reduces
            # to per-factor membership masks (a semijoin) and the output's
            # build columns are copies of their probe partners.  The
            # product is never expanded.
            pair_map = tuple(zip(probe_positions, build_positions))
            starts = []
            offset = 0
            for width in widths:
                starts.append(offset)
                offset += width
            grouped: dict[int, list[tuple[int, int]]] = {}
            for probe_position, build_position in pair_map:
                for fi in range(len(widths) - 1, -1, -1):
                    if starts[fi] <= build_position < starts[fi] + widths[fi]:
                        grouped.setdefault(fi, []).append(
                            (probe_position, build_position - starts[fi])
                        )
                        break
            factor_groups = tuple(
                (fi, tuple(grouped[fi])) for fi in sorted(grouped)
            )
            # One probe column per build column: equal by the join condition,
            # so the output's build columns are copies of these.
            build_source = tuple(
                next(pp for pp, bp in pair_map if bp == position)
                for position in range(len(right_columns))
            )
            # Fallback grouping when the build side arrives materialized:
            # one pseudo-factor holding all pairs at view-space positions.
            flat_group = ((0, pair_map),)

            def semijoin_kernel(
                env,
                counter,
                _l=left,
                _r=right,
                _groups=factor_groups,
                _flat=flat_group,
                _sources=build_source,
                _out=out_columns,
                _residual=residual,
            ):
                lb = _as_batch(env[_l])
                view = env[_r]
                if lb.length == 0 or view.length == 0:
                    return ColumnBatch.empty(_out)
                if type(view) is ProductView:
                    factors = view.factors
                    groups = _groups
                else:
                    factors = (view,)
                    groups = _flat
                mask = None
                for fi, fpairs in groups:
                    factor = factors[fi]
                    pair_columns = [
                        _key_columns(lb, factor, pp, lp) for pp, lp in fpairs
                    ]
                    if len(pair_columns) == 1:
                        probe_keys, build_column = pair_columns[0]
                        build_set = set(build_column)
                    else:
                        probe_keys = list(
                            zip(*(probe for probe, _ in pair_columns))
                        )
                        build_set = set(zip(*(build for _, build in pair_columns)))
                    part = list(map(build_set.__contains__, probe_keys))
                    mask = (
                        part
                        if mask is None
                        else list(map(operator.and_, mask, part))
                    )
                kept = sum(mask)
                if kept == 0:
                    return ColumnBatch.empty(_out)
                if kept == lb.length:
                    probe_data = lb.data
                else:
                    probe_data = tuple(
                        list(compress(column, mask)) for column in lb.data
                    )
                data = probe_data + tuple(probe_data[src] for src in _sources)
                encodings = lb.encodings + tuple(
                    lb.encodings[src] for src in _sources
                )
                joined = ColumnBatch(_out, data, encodings, kept, lb.distinct)
                if _residual:
                    joined = _apply_predicates(joined, _residual)
                return joined

            return semijoin_kernel, out_columns

        def join_kernel(
            env,
            counter,
            _l=left,
            _r=right,
            _probe=probe_positions,
            _build=build_positions,
            _out=out_columns,
            _residual=residual,
        ):
            lb: ColumnBatch = _as_batch(env[_l])
            rb: ColumnBatch = _as_batch(env[_r])
            if lb.length == 0 or rb.length == 0:
                return ColumnBatch.empty(_out)
            probe_keys, build_keys = _join_keys(lb, rb, _probe, _build)
            data, length = _hash_join_gather(lb, rb, probe_keys, build_keys)
            if length == 0:
                return ColumnBatch.empty(_out)
            joined = ColumnBatch(
                _out,
                data,
                lb.encodings + rb.encodings,
                length,
                lb.distinct and rb.distinct,
            )
            if _residual:
                joined = _apply_predicates(joined, _residual)
            return joined

        return join_kernel, out_columns

    def _compile_set_op(
        self, step: PlanStep, columns: list[tuple[str, ...]]
    ) -> tuple[ColumnKernel, tuple[str, ...]]:
        op = step.op
        left, right = op.inputs
        if len(columns[left]) != len(columns[right]):
            raise PlanError(
                f"step T{step.id}: operands have arities {len(columns[left])} "
                f"and {len(columns[right])}"
            )
        out_columns = columns[left]
        if isinstance(op, UnionOp):

            def union_kernel(env, counter, _l=left, _r=right, _out=out_columns):
                lb: ColumnBatch = _as_batch(env[_l])
                rb: ColumnBatch = _as_batch(env[_r])
                if rb.length == 0:
                    return ColumnBatch(
                        _out, lb.data, lb.encodings, lb.length, lb.distinct
                    )
                if lb.length == 0:
                    return ColumnBatch(
                        _out, rb.data, rb.encodings, rb.length, rb.distinct
                    )
                if all(le is re for le, re in zip(lb.encodings, rb.encodings)):
                    data = tuple(lc + rc for lc, rc in zip(lb.data, rb.data))
                    encodings = lb.encodings
                else:
                    data = tuple(
                        lb.decoded_column(i) + rb.decoded_column(i)
                        for i in range(len(_out))
                    )
                    encodings = (None,) * len(_out)
                return _dedupe(
                    ColumnBatch(_out, data, encodings, lb.length + rb.length, False)
                )

            return union_kernel, out_columns

        subtract = isinstance(op, DifferenceOp)

        def set_kernel(env, counter, _l=left, _r=right, _out=out_columns, _sub=subtract):
            lb: ColumnBatch = _as_batch(env[_l])
            rb: ColumnBatch = _as_batch(env[_r])
            if rb.length == 0:
                if _sub:
                    return ColumnBatch(
                        _out, lb.data, lb.encodings, lb.length, lb.distinct
                    )
                return ColumnBatch.empty(_out)
            if lb.length == 0:
                return ColumnBatch.empty(_out)
            shared = all(le is re for le, re in zip(lb.encodings, rb.encodings))
            left_rows = lb.row_tuples(decode=not shared)
            right_rows = set(rb.row_tuples(decode=not shared))
            encodings = lb.encodings if shared else (None,) * len(_out)
            if _sub:
                rows = [row for row in dict.fromkeys(left_rows) if row not in right_rows]
            else:
                rows = [row for row in dict.fromkeys(left_rows) if row in right_rows]
            if not rows:
                return ColumnBatch.empty(_out)
            if not _out:
                return ColumnBatch(_out, (), (), len(rows), True)
            data = tuple(list(column) for column in zip(*rows))
            return ColumnBatch(_out, data, encodings, len(rows), True)

        return set_kernel, out_columns


def _hash_join_gather(
    lb: ColumnBatch,
    rb: ColumnBatch,
    probe_keys: Sequence,
    build_keys: Sequence,
) -> tuple[tuple[list, ...], int]:
    """Match probe keys against build keys and gather the joined columns.

    Returns ``(data, row_count)``.  Two fast paths keep the match loop in C:
    when either side's keys are duplicate-free, the whole join is one
    ``dict(zip(...))`` build plus one ``map(.get)`` probe plus per-column
    gathers.  Only genuinely many-to-many joins pay the per-row bucket loop,
    and even there the output indices are built with list comprehensions
    rather than per-match ``append`` calls.
    """
    build_map = dict(zip(build_keys, range(rb.length)))
    if len(build_map) == rb.length:
        # Build side unique: each probe row matches at most one build row.
        hits = list(map(build_map.get, probe_keys))
        mask = [j is not None for j in hits]
        matched = sum(mask)
        if matched == 0:
            return (), 0
        right_take = [j for j in hits if j is not None]
        if matched == len(probe_keys):
            left_data = tuple(lb.data)
        else:
            left_data = tuple(list(compress(column, mask)) for column in lb.data)
        right_data = tuple(
            list(map(column.__getitem__, right_take)) for column in rb.data
        )
        return left_data + right_data, matched
    probe_map = dict(zip(probe_keys, range(lb.length)))
    if len(probe_map) == lb.length:
        # Probe side unique: swap roles (output order differs, sets don't care).
        hits = list(map(probe_map.get, build_keys))
        mask = [i is not None for i in hits]
        matched = sum(mask)
        if matched == 0:
            return (), 0
        left_take = [i for i in hits if i is not None]
        left_data = tuple(
            list(map(column.__getitem__, left_take)) for column in lb.data
        )
        if matched == len(build_keys):
            right_data = tuple(rb.data)
        else:
            right_data = tuple(list(compress(column, mask)) for column in rb.data)
        return left_data + right_data, matched
    # Many-to-many: classic bucketed join.
    buckets: dict = {}
    setdefault = buckets.setdefault
    for j, key in enumerate(build_keys):
        setdefault(key, []).append(j)
    matches = list(map(buckets.get, probe_keys))
    left_take = [
        i for i, bucket in enumerate(matches) if bucket is not None for _ in bucket
    ]
    if not left_take:
        return (), 0
    right_take = [j for bucket in matches if bucket is not None for j in bucket]
    data = tuple(
        list(map(column.__getitem__, left_take)) for column in lb.data
    ) + tuple(list(map(column.__getitem__, right_take)) for column in rb.data)
    return data, len(left_take)


def _join_keys(
    lb: ColumnBatch,
    rb: ColumnBatch,
    probe_positions: tuple[int, ...],
    build_positions: tuple[int, ...],
):
    """Probe/build key sequences that compare correctly across encodings.

    Shared dictionary → raw codes; two different dictionaries → translate
    probe codes into build codes via a cached table; one coded side →
    lift the raw side into the coded side's code space with one
    ``map(codes.get)``.  A value absent from the target dictionary maps to
    ``None``, which never equals a real code, so misses simply don't join.
    Every path keeps the key loop in C and joins on small ints whenever a
    dictionary is involved."""
    if len(probe_positions) == 1:
        return _key_columns(lb, rb, probe_positions[0], build_positions[0])
    left_columns: list = []
    right_columns: list = []
    for p, b in zip(probe_positions, build_positions):
        left, right = _key_columns(lb, rb, p, b)
        left_columns.append(left)
        right_columns.append(right)
    if not left_columns:  # degenerate: no equality pairs -> everything matches
        return [()] * lb.length, [()] * rb.length
    return list(zip(*left_columns)), list(zip(*right_columns))


def _key_columns(lb: ColumnBatch, rb: ColumnBatch, p: int, b: int):
    """Comparable key columns for one probe/build column pair."""
    left_enc, right_enc = lb.encodings[p], rb.encodings[b]
    if left_enc is right_enc:  # same dictionary, or both raw
        return lb.data[p], rb.data[b]
    if left_enc is not None and right_enc is not None:
        return left_enc.translate_column(lb.data[p], right_enc), rb.data[b]
    if right_enc is not None:
        return list(map(right_enc.codes.get, lb.data[p])), rb.data[b]
    return lb.data[p], list(map(left_enc.codes.get, rb.data[b]))
