"""Unit tests for the reference RA evaluator."""

import pytest

from repro.core.errors import QueryError
from repro.core.query import (
    Comparison,
    Constant,
    Difference,
    Join,
    Product,
    Relation,
    Rename,
    Union,
    conjunction,
    eq,
)
from repro.evaluator.algebra import AlgebraEvaluator, ResultSet, evaluate
from repro.storage.counters import AccessCounter
from repro.storage.database import Database


@pytest.fixture
def db(fb_schema):
    database = Database(fb_schema)
    database.insert_many(
        "friend", [("p0", "f1"), ("p0", "f2"), ("p1", "f3")]
    )
    database.insert_many(
        "dine",
        [
            ("f1", "c1", "may", 2015),
            ("f2", "c2", "may", 2015),
            ("f3", "c1", "jan", 2014),
            ("p0", "c3", "feb", 2015),
        ],
    )
    database.insert_many("cafe", [("c1", "nyc"), ("c2", "boston"), ("c3", "nyc")])
    return database


@pytest.fixture
def friend(fb_schema):
    return Relation.from_schema(fb_schema, "friend")


@pytest.fixture
def dine(fb_schema):
    return Relation.from_schema(fb_schema, "dine")


@pytest.fixture
def cafe(fb_schema):
    return Relation.from_schema(fb_schema, "cafe")


class TestBasicOperators:
    def test_scan(self, db, cafe):
        result = evaluate(cafe, db)
        assert len(result) == 3
        assert result.columns == ("cafe.cid", "cafe.city")

    def test_selection_constant(self, db, cafe):
        result = evaluate(cafe.select(eq(cafe["city"], "nyc")), db)
        assert result.values("cafe.cid") == {"c1", "c3"}

    def test_selection_inequality(self, db, dine):
        result = evaluate(dine.select(Comparison(dine["year"], ">", Constant(2014))), db)
        assert len(result) == 3

    def test_selection_incomparable_types_do_not_match(self, db, dine):
        result = evaluate(dine.select(Comparison(dine["year"], "<", Constant("zzz"))), db)
        assert len(result) == 0

    def test_projection_dedupes(self, db, dine):
        result = evaluate(dine.project(["month"]), db)
        assert result.rows == {("may",), ("jan",), ("feb",)}

    def test_product(self, db, friend, cafe):
        result = evaluate(Product(friend, cafe), db)
        assert len(result) == 3 * 3
        assert len(result.columns) == 4

    def test_join(self, db, friend, dine):
        joined = Join(friend, dine, eq(friend["fid"], dine["pid"]))
        result = evaluate(joined, db)
        assert len(result) == 3

    def test_join_with_residual_condition(self, db, friend, dine):
        condition = conjunction(
            [eq(friend["fid"], dine["pid"]), Comparison(dine["year"], ">", Constant(2014))]
        )
        result = evaluate(Join(friend, dine, condition), db)
        assert len(result) == 2

    def test_union_and_difference(self, db, cafe, fb_schema):
        cafe2 = Relation("cafe2", fb_schema["cafe"].attributes, base="cafe")
        nyc = cafe.select(eq(cafe["city"], "nyc")).project([cafe["cid"]])
        boston = cafe2.select(eq(cafe2["city"], "boston")).project([cafe2["cid"]])
        union = evaluate(Union(nyc, boston), db)
        assert union.rows == {("c1",), ("c2",), ("c3",)}
        difference = evaluate(Difference(nyc, boston), db)
        assert difference.rows == {("c1",), ("c3",)}

    def test_rename(self, db, cafe):
        renamed = Rename(cafe.project(["cid"]), "venues")
        result = evaluate(renamed, db)
        assert result.columns == ("venues.cid",)

    def test_example1_q0(self, db, fb_q0):
        """On this hand-built instance, p0's friends dined at c1/c2 (nyc: c1),
        while p0 itself dined only at c3 — so Q0 returns {c1}."""
        result = evaluate(fb_q0, db)
        assert result.rows == {("c1",)}


class TestResultSet:
    def test_column_position_error(self):
        result = ResultSet(("a",), frozenset({(1,)}))
        with pytest.raises(QueryError):
            result.column_position("b")

    def test_as_dicts(self):
        result = ResultSet(("a", "b"), frozenset({(1, 2)}))
        assert result.as_dicts() == [{"a": 1, "b": 2}]

    def test_values(self):
        result = ResultSet(("a",), frozenset({(1,), (2,)}))
        assert result.values("a") == {1, 2}


class TestAccessAccounting:
    def test_scans_recorded(self, db, friend, dine):
        counter = AccessCounter()
        evaluate(Join(friend, dine, eq(friend["fid"], dine["pid"])), db, counter)
        assert counter.scanned == len(db.relation("friend")) + len(db.relation("dine"))
        assert counter.fetched == 0

    def test_evaluator_reuse(self, db, cafe):
        evaluator = AlgebraEvaluator(db)
        evaluator.evaluate(cafe)
        evaluator.evaluate(cafe)
        assert evaluator.counter.scanned == 6
