"""Robustness policies for the serving tier: retries, backoff, breakers.

Everything here is deliberately *deterministic and clock-injectable*: the
randomness of the decorrelated-jitter backoff comes from a caller-supplied
``random.Random``, and the circuit breaker reads time through an injected
monotonic clock.  That makes the policies unit-testable tick by tick and
lets the fault-injection soak (:mod:`repro.serving.soak`) replay identical
schedules across runs.

The pieces:

* :class:`Backoff` — decorrelated-jitter delays (``sleep = U(base,
  prev * 3)`` capped), the AWS-recommended variant that avoids both thundering
  herds (full jitter) and lockstep retry waves (pure exponential).
* :class:`RetryBudget` — a token bucket that bounds *system-wide* retry
  amplification: each first attempt earns a fraction of a token, each retry
  spends one.  Under a full outage retries self-extinguish instead of
  multiplying the load.
* :class:`RetryPolicy` — the per-request knobs (attempt cap, delays) plus
  factories for the two above.
* :class:`CircuitBreaker` — a closed / open / half-open breaker.  The engine
  mounts one around the *unbounded* conventional fallback
  (:class:`~repro.core.engine.BoundedEngine` ``fallback_breaker``), so a
  stampede of uncovered queries fails fast instead of starving the covered
  hot path whose cost is bounded by ``access_bound()``.
* :class:`Deadline` — an absolute expiry against the injected clock.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable


class Backoff:
    """Decorrelated-jitter backoff: each delay is ``U(base, 3 * previous)``.

    Deterministic given the injected ``rng``; one instance per request
    attempt-chain (delays are stateful — each draw feeds the next range).
    """

    def __init__(self, base: float, cap: float, rng: random.Random):
        if base <= 0 or cap < base:
            raise ValueError(f"backoff needs 0 < base <= cap, got {base}, {cap}")
        self.base = base
        self.cap = cap
        self._rng = rng
        self._previous = base

    def next_delay(self) -> float:
        """The next sleep, in seconds (never below ``base`` nor above ``cap``)."""
        self._previous = min(self.cap, self._rng.uniform(self.base, self._previous * 3))
        return self._previous

    def reset(self) -> None:
        self._previous = self.base


class RetryBudget:
    """A token bucket bounding the global retry-to-request ratio.

    Every first attempt deposits ``ratio`` tokens (capped at ``cap``); every
    retry withdraws one full token and is only permitted while a full token
    is available.  Long-run effect: retries never exceed ``ratio`` of the
    request volume, so a persistent failure can at worst multiply load by
    ``1 + ratio`` instead of ``max_attempts``.
    """

    def __init__(self, ratio: float = 0.1, initial: float = 5.0, cap: float = 50.0):
        self.ratio = ratio
        self.cap = cap
        self.tokens = min(initial, cap)
        self.spent = 0
        self.denied = 0

    def record_attempt(self) -> None:
        """A first (non-retry) attempt happened: accrue budget."""
        self.tokens = min(self.cap, self.tokens + self.ratio)

    def try_spend(self) -> bool:
        """Reserve budget for one retry; ``False`` means the retry must not run."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.spent += 1
            return True
        self.denied += 1
        return False


@dataclass(frozen=True)
class RetryPolicy:
    """Per-request retry knobs for transient faults.

    Only :class:`~repro.core.errors.TransientFault` is retryable; retries are
    additionally capped by the shared :class:`RetryBudget` and the request's
    :class:`Deadline`, whichever is tightest.
    """

    max_attempts: int = 3
    base_delay: float = 0.001
    max_delay: float = 0.05
    budget_ratio: float = 0.2
    budget_initial: float = 5.0
    budget_cap: float = 50.0

    def backoff(self, rng: random.Random) -> Backoff:
        return Backoff(self.base_delay, self.max_delay, rng)

    def budget(self) -> RetryBudget:
        return RetryBudget(self.budget_ratio, self.budget_initial, self.budget_cap)


class CircuitBreaker:
    """A closed / open / half-open circuit breaker.

    * **closed** — calls flow; ``failure_threshold`` *consecutive* failures
      trip it open.
    * **open** — every ``allow()`` is refused until ``cooldown`` seconds have
      passed on the injected clock.
    * **half-open** — after the cooldown, a single probe call is admitted:
      success closes the breaker, failure re-opens it (and restarts the
      cooldown).

    The breaker itself never raises — callers translate a refused ``allow()``
    into :class:`~repro.core.errors.CircuitOpenError` (as
    :meth:`repro.core.engine.BoundedEngine.execute` does for the conventional
    fallback).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.clock = clock
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        self._probe_in_flight = False
        # -- observability counters
        self.times_opened = 0
        self.rejected = 0
        self.successes = 0
        self.failures = 0

    def allow(self) -> bool:
        """Whether a call may proceed right now (may transition to half-open)."""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            assert self.opened_at is not None
            if self.clock() - self.opened_at < self.cooldown:
                self.rejected += 1
                return False
            self.state = self.HALF_OPEN
            self._probe_in_flight = False
        # half-open: admit exactly one probe at a time
        if self._probe_in_flight:
            self.rejected += 1
            return False
        self._probe_in_flight = True
        return True

    def record_success(self) -> None:
        self.successes += 1
        self.consecutive_failures = 0
        if self.state == self.HALF_OPEN:
            self.state = self.CLOSED
            self.opened_at = None
        self._probe_in_flight = False

    def record_failure(self) -> None:
        self.failures += 1
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN or (
            self.state == self.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._trip()
        self._probe_in_flight = False

    def _trip(self) -> None:
        self.state = self.OPEN
        self.opened_at = self.clock()
        self.times_opened += 1

    def stats(self) -> dict[str, int | str]:
        return {
            "state": self.state,
            "times_opened": self.times_opened,
            "rejected": self.rejected,
            "successes": self.successes,
            "failures": self.failures,
        }


@dataclass
class Deadline:
    """An absolute expiry instant on a monotonic clock.

    ``None`` deadlines are represented by the caller, not here: a
    ``Deadline`` always expires.  ``remaining()`` never goes negative, which
    makes it safe to feed straight into sleeps and ``wait_for``.
    """

    expires_at: float
    clock: Callable[[], float] = field(default=time.monotonic, repr=False)

    @classmethod
    def after(cls, seconds: float, clock: Callable[[], float] = time.monotonic) -> "Deadline":
        return cls(expires_at=clock() + seconds, clock=clock)

    def remaining(self) -> float:
        return max(0.0, self.expires_at - self.clock())

    @property
    def expired(self) -> bool:
        return self.clock() >= self.expires_at
