"""Unit tests for the bounded-plan representation and its static estimates."""

import pytest

from repro.core.access import AccessConstraint, AccessSchema
from repro.core.errors import PlanError
from repro.core.plan import (
    BoundedPlan,
    ColumnPredicate,
    ColumnRef,
    ConstOp,
    DifferenceOp,
    FetchOp,
    IntersectOp,
    PlanBuilder,
    PlanStep,
    ProductOp,
    ProjectOp,
    RenameOp,
    SelectOp,
    UnionOp,
    UnitOp,
)


@pytest.fixture
def simple_schema(fb_schema):
    return AccessSchema(
        [
            AccessConstraint.of("friend", "pid", "fid", 5000, name="psi1"),
            AccessConstraint.of("dine", ["pid", "year", "month"], "cid", 31, name="psi2"),
        ],
        schema=fb_schema,
    )


@pytest.fixture
def fetch_plan(simple_schema):
    """A hand-built plan mirroring the start of Example 2: fetch friends of p0."""
    psi1 = next(c for c in simple_schema if c.name == "psi1")
    builder = PlanBuilder(simple_schema, occurrences={"friend": "friend"})
    t0 = builder.add(ConstOp(value="p0", column="friend.pid"), ["friend.pid"])
    t1 = builder.add(
        FetchOp(constraint=psi1, key_columns=("friend.pid",), inputs=(t0,)),
        ["friend.fid", "friend.pid"],
    )
    t2 = builder.add(ProjectOp(columns=("friend.fid",), inputs=(t1,)), ["friend.fid"])
    return builder.build(t2)


class TestColumnPredicate:
    def test_rejects_bad_operator(self):
        with pytest.raises(PlanError):
            ColumnPredicate("a", "~", 1)

    def test_right_is_column(self):
        assert ColumnPredicate("a", "=", ColumnRef("b")).right_is_column
        assert not ColumnPredicate("a", "=", 5).right_is_column


class TestPlanStructure:
    def test_length_and_iteration(self, fetch_plan):
        assert fetch_plan.length == 3
        assert len(list(fetch_plan)) == 3

    def test_fetch_steps_and_constraints_used(self, fetch_plan):
        fetches = fetch_plan.fetch_steps()
        assert len(fetches) == 1
        assert [c.name for c in fetch_plan.constraints_used()] == ["psi1"]

    def test_step_lookup(self, fetch_plan):
        assert isinstance(fetch_plan.step(1).op, FetchOp)
        with pytest.raises(PlanError):
            fetch_plan.step(99)

    def test_str_rendering(self, fetch_plan):
        text = str(fetch_plan)
        assert "fetch" in text
        assert "result: T2" in text

    def test_is_bounded(self, fetch_plan):
        assert fetch_plan.is_bounded


class TestValidation:
    def test_forward_reference_rejected(self, simple_schema):
        psi1 = next(iter(simple_schema))
        steps = [
            PlanStep(0, FetchOp(constraint=psi1, key_columns=("x",), inputs=(1,)), ("a",)),
            PlanStep(1, ConstOp(value=1, column="x"), ("x",)),
        ]
        plan = BoundedPlan(steps=steps, output=0, access_schema=simple_schema)
        with pytest.raises(PlanError, match="later or same step"):
            plan.validate()

    def test_unknown_constraint_rejected(self, simple_schema, fb_schema):
        foreign = AccessConstraint.of("cafe", "cid", "city", 1)
        steps = [
            PlanStep(0, ConstOp(value="c1", column="cafe.cid"), ("cafe.cid",)),
            PlanStep(1, FetchOp(constraint=foreign, key_columns=("cafe.cid",), inputs=(0,)),
                     ("cafe.cid", "cafe.city")),
        ]
        plan = BoundedPlan(steps=steps, output=1, access_schema=simple_schema)
        with pytest.raises(PlanError, match="not in the access schema"):
            plan.validate()
        assert not plan.is_bounded

    def test_missing_output_rejected(self, simple_schema):
        steps = [PlanStep(0, UnitOp(), ())]
        plan = BoundedPlan(steps=steps, output=5, access_schema=simple_schema)
        with pytest.raises(PlanError, match="output step"):
            plan.validate()

    def test_project_output_names_must_align(self):
        with pytest.raises(PlanError):
            ProjectOp(columns=("a", "b"), inputs=(0,), output_names=("x",))


class TestStaticEstimates:
    def test_fetch_bound_multiplies_input(self, fetch_plan):
        bounds = fetch_plan.cardinality_bounds()
        assert bounds[0] == 1
        assert bounds[1] == 5000
        assert bounds[2] == 5000

    def test_access_bound_example1_style(self, simple_schema):
        """Reproduce the arithmetic of Example 1: 5000 + 5000·31 accessed tuples."""
        psi1 = next(c for c in simple_schema if c.name == "psi1")
        psi2 = next(c for c in simple_schema if c.name == "psi2")
        builder = PlanBuilder(simple_schema)
        t0 = builder.add(ConstOp(value="p0", column="pid"), ["pid"])
        t1 = builder.add(
            FetchOp(constraint=psi1, key_columns=("pid",), inputs=(t0,)),
            ["friend.fid", "friend.pid"],
        )
        t2 = builder.add(
            ProjectOp(columns=("friend.fid",), inputs=(t1,), output_names=("fid",)), ["fid"]
        )
        t3 = builder.add(ConstOp(value=2015, column="year"), ["year"])
        t4 = builder.add(ConstOp(value="may", column="month"), ["month"])
        t5 = builder.add(ProductOp(inputs=(t2, t3)), ["fid", "year"])
        t6 = builder.add(ProductOp(inputs=(t5, t4)), ["fid", "year", "month"])
        t7 = builder.add(
            FetchOp(constraint=psi2, key_columns=("month", "fid", "year"), inputs=(t6,)),
            ["dine.cid", "dine.month", "dine.pid", "dine.year"],
        )
        plan = builder.build(t7)
        assert plan.access_bound() == 5000 + 5000 * 31

    def test_column_bounds_for_set_operations(self, simple_schema):
        builder = PlanBuilder(simple_schema)
        t0 = builder.add(ConstOp(value=1, column="x"), ["x"])
        t1 = builder.add(ConstOp(value=2, column="x"), ["x"])
        t2 = builder.add(UnionOp(inputs=(t0, t1)), ["x"])
        t3 = builder.add(DifferenceOp(inputs=(t2, t1)), ["x"])
        t4 = builder.add(IntersectOp(inputs=(t3, t0)), ["x"])
        t5 = builder.add(SelectOp(predicates=(ColumnPredicate("x", "=", 1),), inputs=(t4,)), ["x"])
        t6 = builder.add(RenameOp(mapping={"x": "y"}, inputs=(t5,)), ["y"])
        plan = builder.build(t6)
        bounds = plan.cardinality_bounds()
        assert bounds[2] == 2
        assert bounds[3] == 2
        assert bounds[4] == 2
        assert bounds[6] == 2
        columns = plan.column_bounds()
        assert columns[6] == {"y": 2}

    def test_empty_lhs_fetch_bound(self, fb_schema):
        months = AccessConstraint.of("dine", (), "month", 12)
        schema = AccessSchema([months], schema=fb_schema)
        builder = PlanBuilder(schema)
        t0 = builder.add(UnitOp(), [])
        t1 = builder.add(
            FetchOp(constraint=months, key_columns=(), inputs=(t0,)), ["dine.month"]
        )
        plan = builder.build(t1)
        assert plan.access_bound() == 12

    def test_operator_descriptions(self, fetch_plan):
        descriptions = [step.op.describe() for step in fetch_plan]
        assert any("fetch" in d for d in descriptions)
        assert any("π" in d for d in descriptions)
